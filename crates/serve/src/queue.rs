//! Bounded MPSC admission queue with explicit backpressure.
//!
//! The overload contract of the front-end lives here: a queue never grows
//! past its capacity, a full queue rejects at the door (`try_push` hands
//! the item back so the caller can shed with a typed error), and closing
//! the queue wakes every blocked consumer so shutdown cannot hang.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Why a [`BoundedQueue::try_push`] was refused; the rejected item rides
/// along so the producer can complete it with a typed error.
#[derive(Debug)]
pub(crate) enum PushRefused<T> {
    /// The queue is at capacity — shed the request.
    Full(T),
    /// The queue was closed — the front-end is shutting down.
    Closed(T),
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    max_depth: usize,
}

/// A capacity-bounded FIFO shared between submitters and one shard worker.
#[derive(Debug)]
pub(crate) struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false, max_depth: 0 }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Mutex poisoning only happens when a holder panicked; the queue's
    /// state is a plain FIFO that every critical section leaves
    /// consistent, so we recover the guard instead of propagating a panic
    /// into the serving path.
    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues `item` unless the queue is full or closed. On success
    /// returns the depth *after* the push (for queue-depth telemetry).
    pub(crate) fn try_push(&self, item: T) -> Result<usize, PushRefused<T>> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushRefused::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushRefused::Full(item));
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        inner.max_depth = inner.max_depth.max(depth);
        drop(inner);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Blocks until an item is available or the queue is closed **and**
    /// drained; `None` means the consumer should exit. Closing never
    /// discards queued items — they are handed out first so every admitted
    /// request still resolves.
    pub(crate) fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue and wakes every blocked consumer.
    pub(crate) fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Current depth.
    pub(crate) fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// High-watermark depth observed since construction.
    pub(crate) fn max_depth(&self) -> usize {
        self.lock().max_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_depth_tracking() {
        let q = BoundedQueue::new(3);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.max_depth(), 2);
    }

    #[test]
    fn full_queue_hands_the_item_back() {
        let q = BoundedQueue::new(1);
        assert!(q.try_push(10).is_ok());
        match q.try_push(11) {
            Err(PushRefused::Full(item)) => assert_eq!(item, 11),
            other => panic!("expected Full, got {other:?}"),
        }
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = BoundedQueue::new(4);
        q.try_push("a").ok();
        q.close();
        match q.try_push("b") {
            Err(PushRefused::Closed(item)) => assert_eq!(item, "b"),
            other => panic!("expected Closed, got {other:?}"),
        }
        // The queued item survives the close; only then does pop end.
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_a_blocked_consumer() {
        let q = std::sync::Arc::new(BoundedQueue::<u32>::new(1));
        let q2 = std::sync::Arc::clone(&q);
        let svc = deepoheat_parallel::spawn_service("queue-test-pop", move || {
            assert_eq!(q2.pop(), None);
        });
        // Give the consumer a moment to park, then close.
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert!(!svc.join(), "consumer exited cleanly");
    }
}
