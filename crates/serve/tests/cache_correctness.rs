//! Cache-correctness contract of the serving engine:
//!
//! * a warm (cached) evaluation is bit-identical to the cold evaluation
//!   that populated the cache, and to the model's unbatched path;
//! * the LRU eviction sequence is a pure function of the request
//!   sequence — replaying the requests reproduces hits, misses, and
//!   evictions exactly;
//! * batched serving is bit-identical across worker-pool widths and
//!   trunk-chunk sizes.

#![deny(unsafe_code)]

use deepoheat::{DeepOHeat, DeepOHeatConfig};
use deepoheat_linalg::Matrix;
use deepoheat_parallel::ThreadPool;
use deepoheat_serve::{CacheKey, EmbeddingCache, InferenceEngine, ServeOptions};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

fn model() -> DeepOHeat {
    let cfg = DeepOHeatConfig::single_branch(9, &[16, 16], &[16, 16], 12)
        .with_fourier(8, 1.0)
        .with_output_transform(300.0, 50.0);
    let mut rng = StdRng::seed_from_u64(11);
    DeepOHeat::new(&cfg, &mut rng).expect("config is valid")
}

fn design(rng: &mut StdRng) -> Matrix {
    Matrix::from_fn(1, 9, |_, _| rng.gen_range(0.0..1.0))
}

fn queries(n: usize) -> Matrix {
    Matrix::from_fn(n, 3, |i, j| {
        let t = i as f64 / n as f64;
        (t + j as f64 * 0.37).sin() * 0.5 + 0.5
    })
}

#[test]
fn warm_hit_is_bit_identical_to_cold_eval() {
    let m = model();
    let input = design(&mut StdRng::seed_from_u64(1));
    let coords = queries(257);
    let reference = m.predict(&[&input], &coords).expect("unbatched reference");

    let mut engine = InferenceEngine::new(
        m,
        ServeOptions { cache_capacity: 4, trunk_chunk: 32, ..ServeOptions::default() },
    )
    .expect("valid options");
    let cold = engine.predict(&[&input], &coords).expect("cold eval");
    assert_eq!(engine.cache_stats().misses, 1);

    let warm = engine.predict(&[&input], &coords).expect("warm eval");
    assert_eq!(engine.cache_stats().hits, 1);

    assert_eq!(cold.as_slice(), reference.as_slice(), "cold batched == unbatched, bitwise");
    assert_eq!(warm.as_slice(), cold.as_slice(), "warm cache hit == cold eval, bitwise");
}

#[test]
fn eviction_sequence_is_a_pure_function_of_requests() {
    // Drive two identical engines through the same 40-request sequence of
    // 7 designs against a 3-entry cache and demand identical counters,
    // identical residency, and identical recency order at every step.
    let mut rng = StdRng::seed_from_u64(2);
    let designs: Vec<Matrix> = (0..7).map(|_| design(&mut rng)).collect();
    let sequence: Vec<usize> = (0..40).map(|i| (i * 5 + i / 3) % designs.len()).collect();
    let coords = queries(16);

    let opts = ServeOptions { cache_capacity: 3, trunk_chunk: 8, ..ServeOptions::default() };
    let mut a = InferenceEngine::new(model(), opts.clone()).expect("valid options");
    let mut b = InferenceEngine::new(model(), opts).expect("valid options");

    for &idx in &sequence {
        let input = &designs[idx];
        let out_a = a.predict(&[input], &coords).expect("engine a");
        let out_b = b.predict(&[input], &coords).expect("engine b");
        assert_eq!(out_a.as_slice(), out_b.as_slice());
        assert_eq!(a.cache_stats(), b.cache_stats(), "counters diverged");
        assert_eq!(a.cache_len(), b.cache_len());
    }
    let stats = a.cache_stats();
    assert!(stats.evictions > 0, "sequence must exercise eviction");
    assert_eq!(stats.hits + stats.misses, sequence.len() as u64);
}

#[test]
fn raw_cache_replay_reproduces_recency_order() {
    // Same property at the EmbeddingCache level, checking the exact
    // LRU order (not just counters) after a replay.
    let m = model();
    let keys: Vec<(CacheKey, Matrix)> = (0..5)
        .map(|i| {
            let input = Matrix::filled(1, 9, 0.1 * (i as f64 + 1.0));
            (CacheKey::of(&[&input]), input)
        })
        .collect();

    let run = || {
        let mut cache = EmbeddingCache::new(2);
        for (key, input) in &keys {
            if cache.get(key).is_none() {
                let emb = m.encode_branches(&[input]).expect("encode");
                cache.insert(key.clone(), std::sync::Arc::new(emb));
            }
        }
        // Touch the oldest resident to rotate the order.
        let order: Vec<CacheKey> = cache.keys_by_recency().into_iter().cloned().collect();
        if let Some(first) = order.first() {
            let _ = cache.get(first);
        }
        (cache.stats(), cache.keys_by_recency().iter().map(|k| k.hash()).collect::<Vec<u64>>())
    };

    let (stats1, order1) = run();
    let (stats2, order2) = run();
    assert_eq!(stats1, stats2);
    assert_eq!(order1, order2);
    assert_eq!(stats1.evictions, 3, "5 inserts into capacity 2");
}

#[test]
fn serving_is_bit_identical_across_pool_widths_and_chunk_sizes() {
    let input = design(&mut StdRng::seed_from_u64(3));
    let coords = queries(301);
    let reference = {
        let m = model();
        m.predict(&[&input], &coords).expect("reference")
    };

    for threads in [1usize, 2, 4, 8] {
        for chunk in [1usize, 13, 64, 1024] {
            let pool = ThreadPool::new(threads);
            let out = pool.install(|| {
                let mut engine = InferenceEngine::new(
                    model(),
                    ServeOptions {
                        cache_capacity: 2,
                        trunk_chunk: chunk,
                        ..ServeOptions::default()
                    },
                )
                .expect("valid options");
                // Twice: cover both the cold and the cached path under
                // this pool width.
                let cold = engine.predict(&[&input], &coords).expect("cold");
                let warm = engine.predict(&[&input], &coords).expect("warm");
                assert_eq!(cold.as_slice(), warm.as_slice());
                cold
            });
            assert_eq!(
                out.as_slice(),
                reference.as_slice(),
                "threads={threads} chunk={chunk} must be bit-identical to the serial reference"
            );
        }
    }
}
