//! Deterministic chaos suite for the concurrent serving front-end.
//!
//! Contract under test (ISSUE 7): with faults injected at every pipeline
//! stage — admission, encode, trunk-eval, shard — the front-end never
//! hangs or deadlocks. Every request resolves to a result, a typed
//! rejection, or a flagged degraded result; the same seed replays the
//! identical fault sequence and outcome; and every successful answer is
//! bit-identical to the single-caller engine.
//!
//! Every test body runs under a watchdog that aborts the process on
//! timeout, so a hang is a loud CI failure, not a stuck job.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use deepoheat::{DeepOHeat, DeepOHeatConfig};
use deepoheat_linalg::Matrix;
use deepoheat_serve::{
    FrontendOptions, ManualClock, ServeError, ServeFaultPlan, ServeFrontend, ServeOptions,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Seconds a single test body may run before the watchdog kills the
/// whole process. Generous: these tests finish in well under a second.
const WATCHDOG_SECS: u64 = 120;

/// Runs `f` on a helper thread and aborts the process if it does not
/// finish in time — the "zero hangs" assertion the CI chaos job relies
/// on. Panics from `f` propagate to the test harness as usual.
fn with_watchdog<T: Send + 'static>(name: &str, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        let result = f();
        let _ = tx.send(());
        result
    });
    match rx.recv_timeout(Duration::from_secs(WATCHDOG_SECS)) {
        Ok(()) => match worker.join() {
            Ok(value) => value,
            Err(payload) => std::panic::resume_unwind(payload),
        },
        Err(_) => {
            eprintln!("watchdog: chaos test {name} exceeded {WATCHDOG_SECS}s; aborting process");
            std::process::abort();
        }
    }
}

fn model() -> DeepOHeat {
    let cfg = DeepOHeatConfig::single_branch(4, &[8], &[8], 6);
    let mut rng = StdRng::seed_from_u64(7);
    DeepOHeat::new(&cfg, &mut rng).expect("config is valid")
}

fn design(i: usize) -> Matrix {
    Matrix::from_fn(1, 4, |_, j| 0.05 * (i as f64 + 1.0) + 0.1 * j as f64)
}

fn coords() -> Matrix {
    Matrix::from_fn(23, 3, |i, j| (i as f64).mul_add(0.04, j as f64 * 0.2))
}

fn base_options() -> FrontendOptions {
    FrontendOptions { retry_backoff_micros: 0, ..FrontendOptions::default() }
}

/// Compact, comparable summary of one request's outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Outcome {
    Served { degraded: bool, attempts: u32, checksum: u64 },
    Rejected(String),
}

fn checksum(values: &Matrix) -> u64 {
    values
        .as_slice()
        .iter()
        .fold(values.as_slice().len() as u64, |acc, v| acc.rotate_left(7) ^ v.to_bits())
}

fn outcome_of(result: Result<deepoheat_serve::Served, ServeError>) -> Outcome {
    match result {
        Ok(served) => Outcome::Served {
            degraded: served.degraded,
            attempts: served.attempts,
            checksum: checksum(&served.values),
        },
        Err(e) => Outcome::Rejected(e.to_string()),
    }
}

#[test]
fn faults_at_every_stage_every_request_resolves() {
    with_watchdog("faults_at_every_stage_every_request_resolves", || {
        const REQUESTS: usize = 60;
        let m = model();
        let queries = coords();
        let expected: Vec<Matrix> = (0..5)
            .map(|i| m.predict(&[&design(i)], &queries).expect("reference predict"))
            .collect();
        let plan = ServeFaultPlan::from_seed(97, REQUESTS as u64, 40);
        assert!(!plan.is_empty(), "seeded plan injects faults");
        let opts = FrontendOptions {
            shards: 2,
            queue_capacity: 256,
            max_retries: 2,
            faults: plan,
            ..base_options()
        };
        let frontend = ServeFrontend::new(m, opts).expect("valid options");
        // Pipelined submission: admission on this thread, service on the
        // shard workers, waits interleaved afterwards.
        let mut pending = Vec::new();
        for r in 0..REQUESTS {
            let input = design(r % 5);
            match frontend.submit(&[&input], &queries) {
                Ok(ticket) => pending.push((r, Some(ticket))),
                Err(e) => {
                    assert!(
                        matches!(e, ServeError::Overloaded { .. }),
                        "admission rejection must be typed overload, got {e}"
                    );
                    pending.push((r, None));
                }
            }
        }
        let mut served = 0u64;
        let mut rejected = 0u64;
        for (r, ticket) in pending {
            match ticket {
                None => rejected += 1,
                Some(ticket) => match ticket.wait() {
                    Ok(response) => {
                        assert_eq!(
                            response.values.as_slice(),
                            expected[r % 5].as_slice(),
                            "request {r}: served values must be bit-identical"
                        );
                        served += 1;
                    }
                    Err(
                        ServeError::Overloaded { .. }
                        | ServeError::DeadlineExceeded { .. }
                        | ServeError::ShardFailed { .. }
                        | ServeError::ShuttingDown,
                    ) => rejected += 1,
                    Err(other) => panic!("request {r}: untyped rejection {other}"),
                },
            }
        }
        assert_eq!(served + rejected, REQUESTS as u64, "every request resolved");
        assert!(served > 0, "most requests survive a 40% fault rate");
        let stats = frontend.stats();
        assert_eq!(stats.submitted, REQUESTS as u64);
        assert_eq!(stats.served, served);
        assert!(stats.shard_failures > 0, "plan injected transient failures");
    });
}

#[test]
fn same_seed_replays_identical_outcomes() {
    with_watchdog("same_seed_replays_identical_outcomes", || {
        const REQUESTS: usize = 48;
        let run = |seed: u64| -> Vec<Outcome> {
            let plan = ServeFaultPlan::from_seed(seed, REQUESTS as u64, 35);
            let opts =
                FrontendOptions { shards: 2, max_retries: 1, faults: plan, ..base_options() };
            let frontend = ServeFrontend::new(model(), opts).expect("valid options");
            let queries = coords();
            // Sequential calls: the outcome stream is then a pure
            // function of (model, plan, request sequence).
            (0..REQUESTS).map(|r| outcome_of(frontend.call(&[&design(r % 4)], &queries))).collect()
        };
        let first = run(1234);
        let second = run(1234);
        assert_eq!(first, second, "same seed must replay identical outcomes");
        let other = run(4321);
        assert_ne!(first, other, "different seed produces a different sequence");
        assert!(
            first.iter().any(|o| matches!(o, Outcome::Rejected(_))),
            "the replayed sequence includes typed rejections"
        );
        assert!(
            first.iter().any(|o| matches!(o, Outcome::Served { .. })),
            "the replayed sequence includes successes"
        );
    });
}

#[test]
fn deadline_expiry_is_scripted_by_the_manual_clock() {
    with_watchdog("deadline_expiry_is_scripted_by_the_manual_clock", || {
        let clock = ManualClock::new(0);
        let mut plan = ServeFaultPlan::none();
        plan.hold.insert(0); // first request parks at the pre-encode gate
        let opts = FrontendOptions { shards: 1, faults: plan, ..base_options() };
        let frontend = ServeFrontend::new_with_clock(model(), opts, Arc::new(clock.clone()))
            .expect("valid options");
        let input = design(0);
        let queries = coords();

        // Request 0: held at the gate, no deadline — must survive.
        let held = frontend.submit(&[&input], &queries).expect("admitted");
        // Request 1: 1ms budget, queued behind the held request.
        let doomed =
            frontend.submit_with_budget(&[&input], &queries, Some(1_000)).expect("admitted");
        // Let the budget lapse while everything is parked, then release.
        clock.advance(2_000);
        frontend.release_holds();

        let ok = held.wait().expect("held request completes after release");
        assert!(!ok.degraded);
        let err = doomed.wait().expect_err("expired in queue");
        assert!(matches!(err, ServeError::DeadlineExceeded { stage: "queue" }), "got {err}");
        assert_eq!(frontend.stats().shed_deadline, 1);
    });
}

#[test]
fn full_queue_sheds_with_typed_overload() {
    with_watchdog("full_queue_sheds_with_typed_overload", || {
        let mut plan = ServeFaultPlan::none();
        plan.hold.insert(0); // wedge the only worker open
        let opts = FrontendOptions { shards: 1, queue_capacity: 2, faults: plan, ..base_options() };
        let frontend = ServeFrontend::new(model(), opts).expect("valid options");
        let input = design(3);
        let queries = coords();

        let wedge = frontend.submit(&[&input], &queries).expect("admitted");
        // Wait until the worker has dequeued the wedge and parked.
        while frontend.queue_depths()[0] > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let q1 = frontend.submit(&[&input], &queries).expect("fills slot 1");
        let q2 = frontend.submit(&[&input], &queries).expect("fills slot 2");
        let err = frontend.submit(&[&input], &queries).expect_err("queue full");
        assert!(
            matches!(err, ServeError::Overloaded { shard: 0, depth: 2 }),
            "typed backpressure, got {err}"
        );
        assert_eq!(frontend.stats().shed_overloaded, 1);
        assert_eq!(frontend.queue_max_depth(), 2, "bounded at capacity");

        frontend.release_holds();
        for ticket in [wedge, q1, q2] {
            assert!(ticket.wait().is_ok(), "queued work still completes");
        }
    });
}

#[test]
fn admission_faults_reject_at_the_door() {
    with_watchdog("admission_faults_reject_at_the_door", || {
        let mut plan = ServeFaultPlan::none();
        plan.admission_reject.insert(1);
        let opts = FrontendOptions { shards: 1, faults: plan, ..base_options() };
        let frontend = ServeFrontend::new(model(), opts).expect("valid options");
        let queries = coords();
        assert!(frontend.call(&[&design(0)], &queries).is_ok());
        let err = frontend.call(&[&design(0)], &queries).expect_err("id 1 rejected");
        assert!(matches!(err, ServeError::Overloaded { .. }), "got {err}");
        assert!(frontend.call(&[&design(0)], &queries).is_ok());
        assert_eq!(frontend.stats().shed_overloaded, 1);
    });
}

#[test]
fn transient_faults_retry_and_recover_bitwise_exact() {
    with_watchdog("transient_faults_retry_and_recover_bitwise_exact", || {
        let m = model();
        let queries = coords();
        let expected = m.predict(&[&design(0)], &queries).expect("reference predict");
        let mut plan = ServeFaultPlan::none();
        plan.shard_fail.insert(0, 1); // first attempt of id 0 fails
        plan.encode_fail.insert(1, 1);
        plan.trunk_fail.insert(2, 1);
        let opts = FrontendOptions { shards: 1, max_retries: 2, faults: plan, ..base_options() };
        let frontend = ServeFrontend::new(m, opts).expect("valid options");
        for r in 0..3 {
            let served = frontend.call(&[&design(0)], &queries).expect("retry succeeds");
            assert_eq!(served.attempts, 2, "request {r} succeeded on the retry");
            assert_eq!(
                served.values.as_slice(),
                expected.as_slice(),
                "request {r}: retried answer is bit-identical"
            );
        }
        let stats = frontend.stats();
        assert_eq!(stats.retries, 3);
        assert_eq!(stats.shard_failures, 3);
        assert_eq!(stats.served, 3);
    });
}

#[test]
fn retry_exhaustion_is_a_typed_shard_failure() {
    with_watchdog("retry_exhaustion_is_a_typed_shard_failure", || {
        let mut plan = ServeFaultPlan::none();
        plan.shard_fail.insert(0, ServeFaultPlan::ALWAYS);
        let opts = FrontendOptions { shards: 1, max_retries: 1, faults: plan, ..base_options() };
        let frontend = ServeFrontend::new(model(), opts).expect("valid options");
        let err = frontend.call(&[&design(0)], &coords()).expect_err("budget exhausted");
        match err {
            ServeError::ShardFailed { attempts, .. } => assert_eq!(attempts, 2),
            other => panic!("expected ShardFailed, got {other}"),
        }
        let stats = frontend.stats();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.retries, 1);
    });
}

#[test]
fn breaker_opens_reroutes_degraded_then_recovers() {
    with_watchdog("breaker_opens_reroutes_degraded_then_recovers", || {
        let m = model();
        let queries = coords();
        // A design whose home is shard 0, so the scripted failures land
        // on a known breaker.
        let opts_probe = FrontendOptions { shards: 2, ..base_options() };
        let probe = ServeFrontend::new(m.clone(), opts_probe).expect("valid options");
        let input = (0..64)
            .map(design)
            .find(|d| probe.home_shard(&[d]) == 0)
            .expect("some design hashes to shard 0");
        drop(probe);
        let expected = m.predict(&[&input], &queries).expect("reference predict");

        let mut plan = ServeFaultPlan::none();
        plan.shard_fail.insert(0, ServeFaultPlan::ALWAYS);
        plan.shard_fail.insert(1, ServeFaultPlan::ALWAYS);
        let opts = FrontendOptions {
            shards: 2,
            max_retries: 0,
            breaker_threshold: 2,
            breaker_cooldown: 1,
            faults: plan,
            ..base_options()
        };
        let frontend = ServeFrontend::new(m, opts).expect("valid options");

        // ids 0, 1: persistent shard faults -> two consecutive failures
        // on shard 0 -> breaker opens.
        for _ in 0..2 {
            let err = frontend.call(&[&input], &queries).expect_err("scripted failure");
            assert!(matches!(err, ServeError::ShardFailed { shard: 0, .. }), "got {err}");
        }
        assert_eq!(frontend.stats().breaker_opens, 1);

        // id 2: home is open -> rerouted to shard 1, served exactly but
        // flagged degraded.
        let served = frontend.call(&[&input], &queries).expect("rerouted");
        assert!(served.degraded, "reroute must be flagged");
        assert_eq!(served.shard, 1);
        assert_eq!(served.home_shard, 0);
        assert_eq!(served.values.as_slice(), expected.as_slice(), "degraded ≠ inexact");

        // id 3: cooldown elapsed -> probe goes to home, succeeds, breaker
        // closes; id 4 is plain home traffic again.
        let probe_served = frontend.call(&[&input], &queries).expect("probe");
        assert_eq!(probe_served.shard, 0, "probe reaches the home shard");
        assert!(!probe_served.degraded);
        let after = frontend.call(&[&input], &queries).expect("recovered");
        assert_eq!(after.shard, 0);
        assert!(!after.degraded);

        let stats = frontend.stats();
        assert_eq!(stats.degraded_served, 1);
        assert!(stats.reroutes >= 1);
    });
}

#[test]
fn warm_path_is_bit_identical_across_shard_counts() {
    with_watchdog("warm_path_is_bit_identical_across_shard_counts", || {
        let m = model();
        let queries = coords();
        let designs: Vec<Matrix> = (0..6).map(design).collect();
        // Single-caller reference engine.
        let mut engine = deepoheat_serve::InferenceEngine::new(m.clone(), ServeOptions::default())
            .expect("valid options");
        let expected: Vec<Matrix> =
            designs.iter().map(|d| engine.predict(&[d], &queries).expect("reference")).collect();
        for shards in [1, 2, 4] {
            let opts = FrontendOptions { shards, ..base_options() };
            let frontend = ServeFrontend::new(m.clone(), opts).expect("valid options");
            for round in 0..2 {
                // Round 0 is cold, round 1 warm (per-shard cache hit);
                // both must be bitwise identical to the reference.
                let tickets: Vec<_> = designs
                    .iter()
                    .map(|d| frontend.submit(&[d], &queries).expect("admitted"))
                    .collect();
                for (i, ticket) in tickets.into_iter().enumerate() {
                    let served = ticket.wait().expect("served");
                    assert_eq!(
                        served.values.as_slice(),
                        expected[i].as_slice(),
                        "shards={shards} round={round} design={i}"
                    );
                    assert!(!served.degraded);
                }
            }
        }
    });
}

#[test]
fn shutdown_resolves_everything_and_is_idempotent() {
    with_watchdog("shutdown_resolves_everything_and_is_idempotent", || {
        let mut plan = ServeFaultPlan::none();
        plan.hold.insert(0);
        let opts = FrontendOptions { shards: 1, queue_capacity: 8, faults: plan, ..base_options() };
        let mut frontend = ServeFrontend::new(model(), opts).expect("valid options");
        let input = design(1);
        let queries = coords();
        let tickets: Vec<_> =
            (0..4).map(|_| frontend.submit(&[&input], &queries).expect("admitted")).collect();
        // Shutdown with one request parked at the gate and the rest
        // queued: must release, drain, and resolve everything.
        frontend.shutdown();
        frontend.shutdown(); // idempotent
        for (i, ticket) in tickets.into_iter().enumerate() {
            assert!(ticket.wait().is_ok(), "queued request {i} resolved at shutdown");
        }
        let err = frontend.submit(&[&input], &queries).expect_err("closed to admissions");
        assert!(matches!(err, ServeError::ShuttingDown));
    });
}
