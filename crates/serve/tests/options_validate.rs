//! Table-driven edge-case coverage for `ServeOptions::validate` and
//! `FrontendOptions::validate`, including that construction
//! (`InferenceEngine::new` / `ServeFrontend::new`) enforces the same
//! contract instead of deferring failures to the request path.

use deepoheat::{DeepOHeat, DeepOHeatConfig};
use deepoheat_serve::{FrontendOptions, InferenceEngine, ServeError, ServeFrontend, ServeOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn model() -> DeepOHeat {
    let cfg = DeepOHeatConfig::single_branch(4, &[8], &[8], 6);
    let mut rng = StdRng::seed_from_u64(7);
    DeepOHeat::new(&cfg, &mut rng).expect("config is valid")
}

#[test]
fn serve_options_validate_table() {
    struct Case {
        name: &'static str,
        options: ServeOptions,
        ok: bool,
        mentions: &'static str,
    }
    let cases = [
        Case {
            name: "defaults are valid",
            options: ServeOptions::default(),
            ok: true,
            mentions: "",
        },
        Case {
            name: "zero cache capacity disables the cache but is valid",
            options: ServeOptions { cache_capacity: 0, ..ServeOptions::default() },
            ok: true,
            mentions: "",
        },
        Case {
            name: "one-row trunk chunks are valid (maximal splitting)",
            options: ServeOptions { trunk_chunk: 1, ..ServeOptions::default() },
            ok: true,
            mentions: "",
        },
        Case {
            name: "huge trunk chunk is valid (single-chunk evaluation)",
            options: ServeOptions { trunk_chunk: usize::MAX, ..ServeOptions::default() },
            ok: true,
            mentions: "",
        },
        Case {
            name: "zero trunk chunk is rejected",
            options: ServeOptions { trunk_chunk: 0, ..ServeOptions::default() },
            ok: false,
            mentions: "trunk_chunk",
        },
        Case {
            name: "zero trunk chunk rejected regardless of cache",
            options: ServeOptions { cache_capacity: 0, trunk_chunk: 0, ..ServeOptions::default() },
            ok: false,
            mentions: "trunk_chunk",
        },
    ];
    for case in cases {
        let result = case.options.validate();
        assert_eq!(result.is_ok(), case.ok, "{}: {result:?}", case.name);
        // Construction must enforce the identical contract.
        let engine = InferenceEngine::new(model(), case.options.clone());
        assert_eq!(engine.is_ok(), case.ok, "{}: construction disagrees", case.name);
        if let Err(err) = result {
            assert!(
                matches!(err, ServeError::InvalidOptions { .. }),
                "{}: typed options error, got {err}",
                case.name
            );
            assert!(
                err.to_string().contains(case.mentions),
                "{}: {err} should mention {}",
                case.name,
                case.mentions
            );
        }
    }
}

#[test]
fn frontend_options_validate_table() {
    fn base() -> FrontendOptions {
        FrontendOptions { retry_backoff_micros: 0, ..FrontendOptions::default() }
    }
    struct Case {
        name: &'static str,
        options: FrontendOptions,
        ok: bool,
        mentions: &'static str,
    }
    let cases = [
        Case { name: "defaults are valid", options: base(), ok: true, mentions: "" },
        Case {
            name: "single shard, minimal queue",
            options: FrontendOptions { shards: 1, queue_capacity: 1, ..base() },
            ok: true,
            mentions: "",
        },
        Case {
            name: "zero retries and zero cooldown are valid",
            options: FrontendOptions { max_retries: 0, breaker_cooldown: 0, ..base() },
            ok: true,
            mentions: "",
        },
        Case {
            name: "zero-deadline default budget is valid at build time",
            options: FrontendOptions { default_deadline_micros: Some(0), ..base() },
            ok: true,
            mentions: "",
        },
        Case {
            name: "zero shards is rejected",
            options: FrontendOptions { shards: 0, ..base() },
            ok: false,
            mentions: "shards",
        },
        Case {
            name: "zero queue capacity is rejected",
            options: FrontendOptions { queue_capacity: 0, ..base() },
            ok: false,
            mentions: "queue_capacity",
        },
        Case {
            name: "zero breaker threshold is rejected",
            options: FrontendOptions { breaker_threshold: 0, ..base() },
            ok: false,
            mentions: "breaker_threshold",
        },
        Case {
            name: "nested engine options are validated too",
            options: FrontendOptions {
                engine: ServeOptions { trunk_chunk: 0, ..ServeOptions::default() },
                ..base()
            },
            ok: false,
            mentions: "trunk_chunk",
        },
    ];
    for case in cases {
        let result = case.options.validate();
        assert_eq!(result.is_ok(), case.ok, "{}: {result:?}", case.name);
        let frontend = ServeFrontend::new(model(), case.options.clone());
        assert_eq!(frontend.is_ok(), case.ok, "{}: construction disagrees", case.name);
        if let Err(err) = result {
            assert!(
                err.to_string().contains(case.mentions),
                "{}: {err} should mention {}",
                case.name,
                case.mentions
            );
        }
    }
}
