//! Telemetry emission regressions for the serving layer.
//!
//! Guards two contracts: shutdown paths (engine and front-end) emit their
//! summary gauges and sink flushes **exactly once** even when `shutdown()`
//! is called explicitly and the value is then dropped, and a chaos run
//! streams a replayable JSONL telemetry log (the artifact the CI chaos
//! job uploads).
//!
//! The telemetry recorder is process-global, so every test here holds one
//! mutex; keep recorder-installing tests in this file only.

use std::sync::{Arc, Mutex, MutexGuard};

use deepoheat::{DeepOHeat, DeepOHeatConfig};
use deepoheat_linalg::Matrix;
use deepoheat_serve::{
    FrontendOptions, InferenceEngine, ServeFaultPlan, ServeFrontend, ServeOptions,
};
use deepoheat_telemetry::{EventKind, JsonlSink, MemorySink, Recorder};
use rand::rngs::StdRng;
use rand::SeedableRng;

static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    TELEMETRY_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn model() -> DeepOHeat {
    let cfg = DeepOHeatConfig::single_branch(4, &[8], &[8], 6);
    let mut rng = StdRng::seed_from_u64(7);
    DeepOHeat::new(&cfg, &mut rng).expect("config is valid")
}

fn gauge_count(sink: &MemorySink, name: &str) -> usize {
    sink.events().iter().filter(|e| e.kind == EventKind::Gauge && e.name == name).count()
}

#[test]
fn engine_shutdown_emits_hit_rate_exactly_once() {
    let _guard = lock();
    deepoheat_telemetry::finish();
    let sink = MemorySink::new();
    Recorder::builder("serve-emission-test").sink(Box::new(Arc::clone(&sink))).install();

    let mut engine = InferenceEngine::new(model(), ServeOptions::default()).expect("valid options");
    let input = Matrix::filled(1, 4, 0.5);
    let queries = Matrix::filled(5, 3, 0.1);
    engine.predict(&[&input], &queries).expect("predict");
    engine.predict(&[&input], &queries).expect("predict");
    // Explicit shutdown followed by drop: the gauge must not double.
    engine.shutdown();
    engine.shutdown();
    drop(engine);

    assert_eq!(
        gauge_count(&sink, "serve.cache.hit_rate"),
        1,
        "shutdown + drop must emit the hit-rate gauge exactly once"
    );
    deepoheat_telemetry::finish();
}

#[test]
fn frontend_shutdown_emits_summary_gauges_exactly_once() {
    let _guard = lock();
    deepoheat_telemetry::finish();
    let sink = MemorySink::new();
    Recorder::builder("serve-frontend-emission-test").sink(Box::new(Arc::clone(&sink))).install();

    let mut plan = ServeFaultPlan::none();
    plan.admission_reject.insert(1);
    let opts = FrontendOptions {
        shards: 2,
        retry_backoff_micros: 0,
        faults: plan,
        ..FrontendOptions::default()
    };
    let mut frontend = ServeFrontend::new(model(), opts).expect("valid options");
    let input = Matrix::filled(1, 4, 0.5);
    let queries = Matrix::filled(5, 3, 0.1);
    assert!(frontend.call(&[&input], &queries).is_ok());
    assert!(frontend.call(&[&input], &queries).is_err(), "id 1 shed at admission");
    frontend.shutdown();
    frontend.shutdown();
    drop(frontend);

    for gauge in ["serve.queue.max_depth", "serve.shed.rate"] {
        assert_eq!(gauge_count(&sink, gauge), 1, "shutdown + drop must emit {gauge} exactly once");
    }
    // Each shard engine emits its own hit-rate gauge once at worker exit
    // (2 shards => 2 emissions, not 4).
    assert_eq!(gauge_count(&sink, "serve.cache.hit_rate"), 2);
    deepoheat_telemetry::finish();
}

#[test]
fn chaos_run_streams_replayable_jsonl_telemetry() {
    let _guard = lock();
    deepoheat_telemetry::finish();
    // CI points DEEPOHEAT_CHAOS_DIR at a workspace path and uploads it as
    // the chaos artifact; local runs fall back to the test tmpdir.
    let dir = std::env::var_os("DEEPOHEAT_CHAOS_DIR")
        .map_or_else(|| std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")), Into::into);
    let path = dir.join("chaos_serve.jsonl");
    let sink = JsonlSink::create(&path).expect("create chaos JSONL log");
    Recorder::builder("serve-chaos")
        .config("seed", 4242)
        .config("fault_percent", 35)
        .sink(Box::new(sink))
        .install();

    const REQUESTS: u64 = 40;
    let opts = FrontendOptions {
        shards: 2,
        max_retries: 1,
        retry_backoff_micros: 0,
        faults: ServeFaultPlan::from_seed(4242, REQUESTS, 35),
        ..FrontendOptions::default()
    };
    let mut frontend = ServeFrontend::new(model(), opts).expect("valid options");
    let queries = Matrix::from_fn(16, 3, |i, j| (i + j) as f64 * 0.05);
    let mut outcomes = [0u64; 2];
    for r in 0..REQUESTS {
        let input = Matrix::from_fn(1, 4, |_, j| 0.1 * ((r % 4) as f64 + 1.0) + 0.05 * j as f64);
        match frontend.call(&[&input], &queries) {
            Ok(_) => outcomes[0] += 1,
            Err(_) => outcomes[1] += 1,
        }
    }
    assert_eq!(outcomes[0] + outcomes[1], REQUESTS);
    frontend.shutdown();
    deepoheat_telemetry::finish();

    let log = std::fs::read_to_string(&path).expect("chaos JSONL exists");
    let lines: Vec<&str> = log.lines().collect();
    assert!(!lines.is_empty(), "chaos run streamed telemetry events");
    assert!(
        lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')),
        "every JSONL line is a complete object"
    );
    assert!(
        lines.iter().any(|l| l.contains("serve.shed.rate")),
        "the shutdown summary reached the log"
    );
}
