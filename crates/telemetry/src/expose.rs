//! Prometheus text exposition (version 0.0.4) for metric snapshots.
//!
//! The serving roadmap needs a scrape surface; until an HTTP listener
//! exists, benches dump one snapshot per run via `--metrics-out` and CI
//! archives it. Dotted metric names are sanitised to underscores under a
//! `deepoheat_` namespace, histograms render as cumulative `_bucket`
//! series plus `_sum`/`_count`, and the bounded-error quantile estimates
//! are exported as plain gauges (`_p50` … `_p999`) so dashboards need no
//! server-side quantile math.

use crate::metrics::MetricsSnapshot;

/// `some.dotted.name` → `deepoheat_some_dotted_name`, with any character
/// outside `[a-zA-Z0-9_]` mapped to `_` (Prometheus name charset).
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 10);
    out.push_str("deepoheat_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' });
    }
    out
}

/// Formats an f64 the way Prometheus expects (`+Inf`/`-Inf`/`NaN`
/// spellings for non-finite values).
fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v:?}")
    }
}

/// Renders a [`MetricsSnapshot`] in Prometheus text exposition format.
/// Every series carries a `run="<run>"` label so snapshots from different
/// benches can be joined in one dashboard. Output is deterministic (the
/// snapshot maps are ordered).
pub fn render_prometheus(snapshot: &MetricsSnapshot, run: &str) -> String {
    let run_label = format!("{{run=\"{}\"}}", run.replace('\\', "\\\\").replace('"', "\\\""));
    let mut out = String::new();

    for (name, value) in &snapshot.counters {
        let prom = sanitize(name);
        out.push_str(&format!("# TYPE {prom} counter\n{prom}{run_label} {value}\n"));
    }

    for (name, value) in &snapshot.gauges {
        let prom = sanitize(name);
        out.push_str(&format!("# TYPE {prom} gauge\n{prom}{run_label} {}\n", format_value(*value)));
    }

    for (name, h) in &snapshot.histograms {
        let prom = sanitize(name);
        out.push_str(&format!("# TYPE {prom} histogram\n"));
        // Cumulative buckets; the zero bucket (observations ≤ 0) folds
        // into the first emitted bound's cumulative count.
        let mut cumulative = h.zero;
        for &(bound, count) in &h.buckets {
            cumulative += count;
            out.push_str(&format!(
                "{prom}_bucket{{run=\"{run}\",le=\"{}\"}} {cumulative}\n",
                format_value(bound)
            ));
        }
        out.push_str(&format!("{prom}_bucket{{run=\"{run}\",le=\"+Inf\"}} {}\n", h.count));
        out.push_str(&format!("{prom}_sum{run_label} {}\n", format_value(h.sum)));
        out.push_str(&format!("{prom}_count{run_label} {}\n", h.count));
        if h.nonfinite > 0 {
            out.push_str(&format!(
                "# TYPE {prom}_nonfinite counter\n{prom}_nonfinite{run_label} {}\n",
                h.nonfinite
            ));
        }
        for (suffix, value) in
            [("p50", h.p50()), ("p90", h.p90()), ("p99", h.p99()), ("p999", h.p999())]
        {
            out.push_str(&format!(
                "# TYPE {prom}_{suffix} gauge\n{prom}_{suffix}{run_label} {}\n",
                format_value(value)
            ));
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricRegistry;

    #[test]
    fn sanitize_maps_dots_and_prefixes() {
        assert_eq!(sanitize("serve.cache.hits"), "deepoheat_serve_cache_hits");
        assert_eq!(sanitize("a-b.c"), "deepoheat_a_b_c");
    }

    #[test]
    fn renders_all_metric_kinds() {
        let r = MetricRegistry::new();
        r.counter("serve.queries.count", 12);
        r.gauge("serve.cache.hit_rate", 0.75);
        r.observe("serve.request.seconds", 0.002);
        r.observe("serve.request.seconds", 0.004);
        let text = render_prometheus(&r.snapshot(), "serve");

        assert!(text.contains("# TYPE deepoheat_serve_queries_count counter\n"));
        assert!(text.contains("deepoheat_serve_queries_count{run=\"serve\"} 12\n"));
        assert!(text.contains("deepoheat_serve_cache_hit_rate{run=\"serve\"} 0.75\n"));
        assert!(text.contains("# TYPE deepoheat_serve_request_seconds histogram\n"));
        assert!(text.contains("deepoheat_serve_request_seconds_count{run=\"serve\"} 2\n"));
        assert!(text.contains("le=\"+Inf\"} 2\n"));
        assert!(text.contains("deepoheat_serve_request_seconds_p99{run=\"serve\"} "));
        // Every non-comment line is "name{labels} value".
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (series, value) = line.rsplit_once(' ').expect("space-separated");
            assert!(series.contains("run=\"serve\""), "{line}");
            assert!(value.parse::<f64>().is_ok() || value == "+Inf" || value == "NaN", "{line}");
        }
    }

    #[test]
    fn buckets_are_cumulative_and_monotone() {
        let r = MetricRegistry::new();
        for v in [0.001, 0.01, 0.1, 1.0, 10.0] {
            r.observe("h.seconds", v);
        }
        let text = render_prometheus(&r.snapshot(), "t");
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.contains("_bucket{"))
            .map(|l| l.rsplit_once(' ').unwrap().1.parse().unwrap())
            .collect();
        assert_eq!(*counts.last().unwrap(), 5, "+Inf bucket holds the total");
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "cumulative: {counts:?}");
    }

    #[test]
    fn nonfinite_observations_surface_as_side_counter() {
        let r = MetricRegistry::new();
        r.observe("h.seconds", 1.0);
        r.observe("h.seconds", f64::NAN);
        let text = render_prometheus(&r.snapshot(), "t");
        assert!(text.contains("deepoheat_h_seconds_nonfinite{run=\"t\"} 1\n"));
        assert!(text.contains("deepoheat_h_seconds_count{run=\"t\"} 1\n"));
    }

    #[test]
    fn run_label_is_escaped() {
        let r = MetricRegistry::new();
        r.counter("c.count", 1);
        let text = render_prometheus(&r.snapshot(), "we\"ird");
        assert!(text.contains("run=\"we\\\"ird\""));
    }
}
