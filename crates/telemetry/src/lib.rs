#![deny(unsafe_code)]
//! Dependency-free structured tracing, metrics, and run manifests for the
//! DeepOHeat reproduction.
//!
//! The paper's claims are quantitative — PDE-residual loss curves, CG
//! convergence inside the reference solver, end-to-end speedups — so every
//! layer of the workspace reports into this crate:
//!
//! * **Metrics** — named counters, gauges, and log-bucketed quantile
//!   histograms in a thread-safe [`MetricRegistry`], snapshotted into the
//!   run manifest with `p50/p90/p99/p999`. Names follow
//!   `subsystem.name.unit` (`fdm.solve.seconds`, `nn.adam.lr`,
//!   `linalg.cg.iterations`).
//! * **Spans** — RAII timers ([`span`]) that record wall time into a
//!   histogram and emit a `span` event on completion. Each span carries a
//!   request-scoped trace ID and a parent link, so the JSONL stream can be
//!   reconstructed into span trees ([`SpanRecord`]) and folded-stack
//!   flamegraphs ([`fold_stacks`]).
//! * **Events** — structured records ([`event`]) with typed fields, e.g.
//!   one per training step carrying the per-loss-term breakdown.
//! * **Sinks** — pluggable outputs: [`ConsoleSink`] for humans,
//!   [`JsonlSink`] for append-only run logs plus a final
//!   [`RunManifest`] JSON, [`MemorySink`] for tests.
//!
//! Telemetry is **opt-in and near-zero cost when off**: every recording
//! function first checks one atomic; with no recorder installed the
//! instrumented hot paths do no other work.
//!
//! # Examples
//!
//! ```
//! use deepoheat_telemetry as telemetry;
//!
//! let sink = telemetry::MemorySink::new();
//! telemetry::Recorder::builder("demo")
//!     .config("iterations", 100)
//!     .sink(Box::new(sink.clone()))
//!     .install();
//!
//! {
//!     let _span = telemetry::span("demo.work");
//!     telemetry::counter("demo.items.count", 3);
//!     telemetry::gauge("demo.lr", 1e-3);
//!     telemetry::event("demo.step", &[("loss", 0.5.into())]);
//! } // span drops here, recording demo.work.seconds
//!
//! let manifest = telemetry::finish().expect("recorder was installed");
//! assert_eq!(manifest.metrics.counters["demo.items.count"], 3);
//! assert!(manifest.metrics.histograms.contains_key("demo.work.seconds"));
//! assert!(!telemetry::is_enabled());
//! ```

mod expose;
mod manifest;
mod metrics;
mod sink;
mod trace;
mod value;

pub use expose::render_prometheus;
pub use manifest::RunManifest;
pub use metrics::{Histogram, HistogramSnapshot, MetricRegistry, MetricsSnapshot};
pub use sink::{ConsoleSink, Event, EventKind, JsonlSink, MemorySink, Sink};
pub use trace::{fold_stacks, SpanRecord};
pub use value::Value;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant, SystemTime};

static ENABLED: AtomicBool = AtomicBool::new(false);
static RECORDER: RwLock<Option<Arc<Recorder>>> = RwLock::new(None);

/// Whether a recorder is currently installed.
///
/// Instrumented code can use this to skip work that only feeds telemetry
/// (e.g. computing a gradient norm).
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The active telemetry pipeline: run identity, metric registry, and
/// sinks. Built with [`Recorder::builder`], then [`RecorderBuilder::install`]ed
/// globally.
pub struct Recorder {
    name: String,
    run_id: String,
    started_unix_secs: u64,
    started: Instant,
    config: BTreeMap<String, String>,
    registry: MetricRegistry,
    sinks: Vec<Box<dyn Sink>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("name", &self.name)
            .field("run_id", &self.run_id)
            .field("sinks", &self.sinks.len())
            .finish_non_exhaustive()
    }
}

impl Recorder {
    /// Starts building a recorder for a run called `name`.
    pub fn builder(name: impl Into<String>) -> RecorderBuilder {
        RecorderBuilder { name: name.into(), config: BTreeMap::new(), sinks: Vec::new() }
    }

    /// The metric registry backing [`counter`], [`gauge`], and
    /// [`observe`].
    pub fn registry(&self) -> &MetricRegistry {
        &self.registry
    }

    fn emit(&self, kind: EventKind, name: &str, fields: Vec<(String, Value)>) {
        let event = Event { kind, name: name.to_string(), elapsed: self.started.elapsed(), fields };
        for sink in &self.sinks {
            sink.record(&event);
        }
    }

    fn into_manifest(self: Arc<Self>) -> RunManifest {
        let manifest = RunManifest {
            name: self.name.clone(),
            run_id: self.run_id.clone(),
            started_unix_secs: self.started_unix_secs,
            wall_seconds: self.started.elapsed().as_secs_f64(),
            config: self.config.clone(),
            metrics: self.registry.snapshot(),
        };
        for sink in &self.sinks {
            sink.manifest(&manifest);
            sink.flush();
        }
        manifest
    }
}

/// Builder for [`Recorder`]; see the [crate-level example](crate).
pub struct RecorderBuilder {
    name: String,
    config: BTreeMap<String, String>,
    sinks: Vec<Box<dyn Sink>>,
}

impl RecorderBuilder {
    /// Records a configuration key/value into the run manifest (values
    /// are stringified with `Display`).
    pub fn config(mut self, key: impl Into<String>, value: impl std::fmt::Display) -> Self {
        self.config.insert(key.into(), value.to_string());
        self
    }

    /// Adds a sink.
    pub fn sink(mut self, sink: Box<dyn Sink>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Adds a [`ConsoleSink`].
    pub fn console(self) -> Self {
        self.sink(Box::new(ConsoleSink::new()))
    }

    /// Adds a [`JsonlSink`] writing to `path` (manifest alongside).
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn jsonl(self, path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Ok(self.sink(Box::new(JsonlSink::create(path)?)))
    }

    /// Installs the recorder globally, replacing (and finishing) any
    /// previous one. Telemetry calls from any thread are live once this
    /// returns.
    pub fn install(self) {
        let now_unix = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let recorder = Arc::new(Recorder {
            run_id: format!("{now_unix}-{}", std::process::id()),
            name: self.name,
            started_unix_secs: now_unix,
            started: Instant::now(),
            config: self.config,
            registry: MetricRegistry::new(),
            sinks: self.sinks,
        });
        let previous = {
            let mut slot = RECORDER.write().expect("telemetry recorder lock poisoned");
            let previous = slot.take();
            *slot = Some(recorder);
            ENABLED.store(true, Ordering::Relaxed);
            previous
        };
        if let Some(previous) = previous {
            previous.into_manifest();
        }
    }
}

/// Runs `f` with the installed recorder, if any.
fn with_recorder<T>(f: impl FnOnce(&Recorder) -> T) -> Option<T> {
    if !is_enabled() {
        return None;
    }
    let guard = RECORDER.read().expect("telemetry recorder lock poisoned");
    guard.as_deref().map(f)
}

/// Finishes the run: snapshots metrics, hands the [`RunManifest`] to every
/// sink, flushes, and uninstalls the recorder. Returns `None` if no
/// recorder was installed.
pub fn finish() -> Option<RunManifest> {
    let recorder = {
        let mut slot = RECORDER.write().expect("telemetry recorder lock poisoned");
        ENABLED.store(false, Ordering::Relaxed);
        slot.take()
    }?;
    Some(recorder.into_manifest())
}

/// Flushes every installed sink **without** finishing the run. Useful at
/// natural checkpoints (engine shutdown, end of a bench phase) so short
/// runs don't lose buffered tail events to a crash. No-op when telemetry
/// is off.
pub fn flush() {
    with_recorder(|r| {
        for sink in &r.sinks {
            sink.flush();
        }
    });
}

/// Snapshot of one named histogram from the live registry, or `None` when
/// telemetry is off or the histogram has recorded nothing. Lets callers
/// surface quantiles (e.g. `serve.request.seconds.p99`) as gauges before
/// the run finishes.
pub fn histogram_snapshot(name: &str) -> Option<HistogramSnapshot> {
    with_recorder(|r| r.registry.histogram_snapshot(name)).flatten()
}

/// Renders the current metric registry in Prometheus text exposition
/// format (see [`render_prometheus`]), or `None` when telemetry is off.
pub fn expose_text() -> Option<String> {
    with_recorder(|r| render_prometheus(&r.registry.snapshot(), &r.name))
}

static MONOTONIC_EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();

/// Microseconds elapsed on a monotonic clock since an arbitrary
/// process-local epoch (fixed on first call). This is the one wall-time
/// primitive exported to result-producing crates: the determinism lints
/// confine [`std::time::Instant`] to this crate, so deadline bookkeeping
/// elsewhere (e.g. `deepoheat-serve` request budgets) reads time through
/// here — and swaps in a manual clock for deterministic tests. Works with
/// or without a recorder installed.
pub fn monotonic_micros() -> u64 {
    let epoch = MONOTONIC_EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Adds `delta` to the named counter. No-op when telemetry is off.
#[inline]
pub fn counter(name: &str, delta: u64) {
    with_recorder(|r| r.registry.counter(name, delta));
}

/// Sets the named gauge and emits a `gauge` event. No-op when telemetry
/// is off.
#[inline]
pub fn gauge(name: &str, value: f64) {
    with_recorder(|r| {
        r.registry.gauge(name, value);
        r.emit(EventKind::Gauge, name, vec![("value".to_string(), Value::F64(value))]);
    });
}

/// Records an observation in the named histogram (registry only — high
/// frequency observations do not flood the sinks). No-op when telemetry
/// is off.
#[inline]
pub fn observe(name: &str, value: f64) {
    with_recorder(|r| r.registry.observe(name, value));
}

/// Emits a structured event with typed fields. No-op when telemetry is
/// off.
///
/// The slice is only materialised when a recorder is installed, so
/// callers on hot paths should gate any *expensive* field computation on
/// [`is_enabled`].
#[inline]
pub fn event(name: &str, fields: &[(&str, Value)]) {
    with_recorder(|r| {
        let fields = fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect();
        r.emit(EventKind::Event, name, fields);
    });
}

/// A request-scoped trace identity: the trace a unit of work belongs to
/// and the span currently in scope. Obtained from [`current_context`] and
/// handed across threads to [`span_with_parent`] so worker-side spans stay
/// attached to the originating request's tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace ID shared by every span of one request (never 0).
    pub trace: u64,
    /// Span ID of the innermost active span (never 0).
    pub span: u64,
}

use std::cell::Cell;
use std::sync::atomic::AtomicU64;

/// Monotonic ID wells. Span IDs are unique per process across traces, so a
/// parent link is unambiguous even when events from concurrent requests
/// interleave in one JSONL stream. 0 is reserved for "none".
static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// The innermost active span on this thread. Spans are thread-affine:
    /// the context propagates to nested spans on the same thread
    /// automatically, and crosses threads only explicitly via
    /// [`span_with_parent`].
    static CURRENT: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// The trace context of the innermost active span on this thread, if any.
/// Capture it before handing work to another thread, then open the
/// worker-side span with [`span_with_parent`].
pub fn current_context() -> Option<TraceContext> {
    CURRENT.with(Cell::get)
}

/// Starts an RAII span timer. On drop it records the wall time into the
/// `<name>.seconds` histogram and emits a `span` event carrying `trace`,
/// `span`, and (for non-root spans) `parent` IDs. Nested spans on the same
/// thread link to the enclosing span automatically; a root span starts a
/// fresh trace. Inert (no clock read, no IDs) when telemetry is off.
#[must_use = "a span records its timing when dropped"]
#[inline]
pub fn span(name: &'static str) -> Span {
    Span::start(name, if is_enabled() { current_context() } else { None })
}

/// Starts a span parented to an explicit [`TraceContext`] instead of this
/// thread's current one — the cross-thread propagation primitive. Pass
/// `None` to force a new root trace.
#[must_use = "a span records its timing when dropped"]
pub fn span_with_parent(name: &'static str, parent: Option<TraceContext>) -> Span {
    Span::start(name, parent)
}

/// RAII guard returned by [`span`] / [`span_with_parent`].
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
    /// This span's identity (`None` when telemetry was off at creation).
    context: Option<TraceContext>,
    /// Span ID of the parent, if this span is not a trace root.
    parent: Option<u64>,
    /// The thread-local context to restore on drop.
    saved: Option<TraceContext>,
}

impl Span {
    fn start(name: &'static str, parent: Option<TraceContext>) -> Span {
        if !is_enabled() {
            return Span { name, start: None, context: None, parent: None, saved: None };
        }
        let trace = parent.map_or_else(|| NEXT_TRACE.fetch_add(1, Ordering::Relaxed), |p| p.trace);
        let context = TraceContext { trace, span: NEXT_SPAN.fetch_add(1, Ordering::Relaxed) };
        let saved = CURRENT.with(|c| c.replace(Some(context)));
        Span {
            name,
            start: Some(Instant::now()),
            context: Some(context),
            parent: parent.map(|p| p.span),
            saved,
        }
    }

    /// Elapsed time so far (`None` when telemetry was off at creation).
    pub fn elapsed(&self) -> Option<Duration> {
        self.start.map(|s| s.elapsed())
    }

    /// This span's trace context (`None` when telemetry was off at
    /// creation). Hand it to [`span_with_parent`] on another thread to
    /// parent worker spans under this one.
    pub fn context(&self) -> Option<TraceContext> {
        self.context
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let seconds = start.elapsed().as_secs_f64();
            CURRENT.with(|c| c.set(self.saved));
            let context = self.context;
            let parent = self.parent;
            with_recorder(|r| {
                r.registry.observe(&format!("{}.seconds", self.name), seconds);
                let mut fields = vec![("seconds".to_string(), Value::F64(seconds))];
                if let Some(ctx) = context {
                    fields.push(("trace".to_string(), Value::U64(ctx.trace)));
                    fields.push(("span".to_string(), Value::U64(ctx.span)));
                }
                if let Some(parent) = parent {
                    fields.push(("parent".to_string(), Value::U64(parent)));
                }
                r.emit(EventKind::Span, self.name, fields);
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The recorder is process-global, so tests that install one must not
    /// run concurrently.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn monotonic_micros_is_nondecreasing_and_recorder_free() {
        // No lock needed: the monotonic clock is independent of the
        // recorder slot.
        let a = monotonic_micros();
        let b = monotonic_micros();
        assert!(b >= a);
        std::thread::sleep(Duration::from_millis(2));
        assert!(monotonic_micros() > a);
    }

    #[test]
    fn disabled_by_default_and_calls_are_noops() {
        let _guard = lock();
        finish();
        assert!(!is_enabled());
        counter("x.count", 1);
        gauge("x.g", 1.0);
        observe("x.h", 1.0);
        event("x.e", &[("a", 1u64.into())]);
        let span = span("x.span");
        assert!(span.elapsed().is_none());
        drop(span);
        assert!(finish().is_none());
    }

    #[test]
    fn full_pipeline_records_and_finishes() {
        let _guard = lock();
        let sink = MemorySink::new();
        Recorder::builder("test-run")
            .config("mode", "physics")
            .sink(Box::new(sink.clone()))
            .install();
        assert!(is_enabled());

        counter("a.count", 2);
        gauge("a.lr", 1e-3);
        observe("a.h", 0.5);
        event("a.step", &[("loss", 0.25.into()), ("iteration", 7u64.into())]);
        {
            let _span = span("a.work");
            std::thread::sleep(Duration::from_millis(2));
        }

        let manifest = finish().expect("recorder installed");
        assert!(!is_enabled());
        assert_eq!(manifest.name, "test-run");
        assert_eq!(manifest.config["mode"], "physics");
        assert_eq!(manifest.metrics.counters["a.count"], 2);
        assert_eq!(manifest.metrics.gauges["a.lr"], 1e-3);
        let work = &manifest.metrics.histograms["a.work.seconds"];
        assert_eq!(work.count, 1);
        assert!(work.max >= 0.002);

        let events = sink.events();
        let kinds: Vec<_> = events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::Gauge));
        assert!(kinds.contains(&EventKind::Event));
        assert!(kinds.contains(&EventKind::Span));
        let manifest_copy = sink.take_manifest().expect("manifest delivered to sink");
        assert_eq!(manifest_copy.metrics, manifest.metrics);
    }

    #[test]
    fn reinstall_finishes_previous_run() {
        let _guard = lock();
        let first = MemorySink::new();
        Recorder::builder("one").sink(Box::new(first.clone())).install();
        counter("one.count", 1);
        Recorder::builder("two").install();
        // Installing "two" finished "one" and delivered its manifest.
        let manifest = first.take_manifest().expect("previous run finished");
        assert_eq!(manifest.name, "one");
        assert_eq!(manifest.metrics.counters["one.count"], 1);
        assert!(finish().is_some());
    }

    #[test]
    fn span_timings_accumulate_in_named_histogram() {
        let _guard = lock();
        Recorder::builder("spans").install();
        for _ in 0..3 {
            let _span = span("unit.op");
        }
        let manifest = finish().unwrap();
        assert_eq!(manifest.metrics.histograms["unit.op.seconds"].count, 3);
    }

    #[test]
    fn nested_spans_share_a_trace_and_link_parents() {
        let _guard = lock();
        let sink = MemorySink::new();
        Recorder::builder("trace").sink(Box::new(sink.clone())).install();
        assert!(current_context().is_none(), "no span open yet");
        {
            let root = span("outer");
            let root_ctx = root.context().expect("enabled");
            assert_eq!(current_context(), Some(root_ctx));
            {
                let inner = span("inner");
                let inner_ctx = inner.context().unwrap();
                assert_eq!(inner_ctx.trace, root_ctx.trace, "same trace");
                assert_ne!(inner_ctx.span, root_ctx.span, "fresh span id");
                assert_eq!(current_context(), Some(inner_ctx));
            }
            assert_eq!(current_context(), Some(root_ctx), "restored after child drop");
        }
        assert!(current_context().is_none(), "restored after root drop");
        finish();

        let records: Vec<SpanRecord> =
            sink.events().iter().filter_map(SpanRecord::from_event).collect();
        assert_eq!(records.len(), 2);
        // Events arrive in drop order: inner first.
        let (inner, outer) = (&records[0], &records[1]);
        assert_eq!(inner.name, "inner");
        assert_eq!(outer.name, "outer");
        assert_eq!(inner.trace, outer.trace);
        assert_eq!(inner.parent, Some(outer.span));
        assert_eq!(outer.parent, None, "root span has no parent");
    }

    #[test]
    fn separate_roots_get_separate_traces() {
        let _guard = lock();
        let sink = MemorySink::new();
        Recorder::builder("traces").sink(Box::new(sink.clone())).install();
        drop(span("first"));
        drop(span("second"));
        finish();
        let records: Vec<SpanRecord> =
            sink.events().iter().filter_map(SpanRecord::from_event).collect();
        assert_eq!(records.len(), 2);
        assert_ne!(records[0].trace, records[1].trace);
    }

    #[test]
    fn span_with_parent_crosses_threads() {
        let _guard = lock();
        let sink = MemorySink::new();
        Recorder::builder("xthread").sink(Box::new(sink.clone())).install();
        {
            let root = span("request");
            let ctx = root.context();
            std::thread::spawn(move || {
                drop(span_with_parent("worker", ctx));
            })
            .join()
            .unwrap();
        }
        finish();
        let records: Vec<SpanRecord> =
            sink.events().iter().filter_map(SpanRecord::from_event).collect();
        let worker = records.iter().find(|r| r.name == "worker").unwrap();
        let request = records.iter().find(|r| r.name == "request").unwrap();
        assert_eq!(worker.trace, request.trace, "context crossed the thread");
        assert_eq!(worker.parent, Some(request.span));
    }

    #[test]
    fn flush_and_live_accessors_work_mid_run() {
        let _guard = lock();
        Recorder::builder("live").install();
        observe("live.op.seconds", 0.5);
        observe("live.op.seconds", 0.5);
        flush(); // must not finish the run
        assert!(is_enabled());
        let snap = histogram_snapshot("live.op.seconds").expect("recorded");
        assert_eq!(snap.count, 2);
        assert!(histogram_snapshot("absent").is_none());
        let text = expose_text().expect("enabled");
        assert!(text.contains("deepoheat_live_op_seconds_count{run=\"live\"} 2"));
        finish();
        assert!(histogram_snapshot("live.op.seconds").is_none());
        assert!(expose_text().is_none());
    }
}
