//! The run manifest: a machine-comparable JSON summary of one run.

use std::collections::BTreeMap;

use crate::metrics::MetricsSnapshot;
use crate::value::{write_json_f64, write_json_string};

/// Summary of a finished run: identity, configuration, wall time, and a
/// final snapshot of every metric.
///
/// Bench binaries write one of these per run (`BENCH_*.json`) so results
/// stay machine-comparable across commits; see `TELEMETRY.md` for the
/// schema.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Run name (e.g. the binary or experiment name).
    pub name: String,
    /// Unique-ish id: unix seconds + pid.
    pub run_id: String,
    /// Unix timestamp (seconds) when the recorder was installed.
    pub started_unix_secs: u64,
    /// Wall-clock duration of the run in seconds.
    pub wall_seconds: f64,
    /// Free-form configuration key/values captured at install time.
    pub config: BTreeMap<String, String>,
    /// Final snapshot of counters, gauges, and histograms.
    pub metrics: MetricsSnapshot,
}

impl RunManifest {
    /// Renders the manifest as a single JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"name\":");
        write_json_string(&mut out, &self.name);
        out.push_str(",\"run_id\":");
        write_json_string(&mut out, &self.run_id);
        out.push_str(",\"started_unix_secs\":");
        out.push_str(&self.started_unix_secs.to_string());
        out.push_str(",\"wall_seconds\":");
        write_json_f64(&mut out, self.wall_seconds);
        out.push_str(",\"config\":{");
        for (i, (key, value)) in self.config.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(&mut out, key);
            out.push(':');
            write_json_string(&mut out, value);
        }
        out.push_str("},\"metrics\":");
        self.metrics.write_json(&mut out);
        out.push('}');
        out
    }

    /// An empty manifest for sink tests.
    #[doc(hidden)]
    pub fn empty_for_tests(name: &str) -> Self {
        RunManifest {
            name: name.to_string(),
            run_id: "test".to_string(),
            started_unix_secs: 0,
            wall_seconds: 0.0,
            config: BTreeMap::new(),
            metrics: MetricsSnapshot::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_json_contains_all_sections() {
        let mut manifest = RunManifest::empty_for_tests("bench");
        manifest.config.insert("iterations".into(), "100".into());
        manifest.wall_seconds = 1.25;
        let json = manifest.to_json();
        assert!(json.contains("\"name\":\"bench\""));
        assert!(json.contains("\"wall_seconds\":1.25"));
        assert!(json.contains("\"iterations\":\"100\""));
        assert!(json.contains("\"counters\":{}"));
        assert!(json.contains("\"histograms\":{}"));
    }
}
