//! Thread-safe metric primitives: counters, gauges, and fixed-bucket
//! histograms, collected in a [`MetricRegistry`].

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::value::write_json_f64;

/// A fixed-bucket histogram.
///
/// Bucket semantics: an observation `v` is counted in the **first** bucket
/// whose upper bound satisfies `v <= bound` (upper bounds are *inclusive*,
/// lower bounds *exclusive*); observations greater than the last bound go
/// to the overflow bucket. Bounds must be strictly increasing and finite.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Creates a histogram with the given inclusive upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty, non-finite, or not strictly
    /// increasing.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        for w in bounds.windows(2) {
            assert!(
                w[0] < w[1],
                "histogram bounds must be strictly increasing: {} !< {}",
                w[0],
                w[1]
            );
        }
        assert!(bounds.iter().all(|b| b.is_finite()), "histogram bounds must be finite");
        let n = bounds.len();
        Histogram {
            bounds,
            counts: vec![0; n + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Default buckets for span durations in seconds: a 1–2–5 series from
    /// 1 µs to 100 s.
    pub fn time_buckets() -> Self {
        let mut bounds = Vec::new();
        let mut decade = 1e-6;
        while decade <= 100.0 {
            for mult in [1.0, 2.0, 5.0] {
                bounds.push(decade * mult);
            }
            decade *= 10.0;
        }
        Histogram::new(bounds)
    }

    /// The inclusive upper bounds (one per non-overflow bucket).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Records one observation. Non-finite observations count toward
    /// `count` (so they are visible) but not toward any bucket.
    pub fn observe(&mut self, v: f64) {
        self.count += 1;
        if !v.is_finite() {
            return;
        }
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let bucket = self.bounds.partition_point(|&b| b < v);
        self.counts[bucket] += 1;
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// An immutable summary of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: if self.min.is_finite() { self.min } else { 0.0 },
            max: if self.max.is_finite() { self.max } else { 0.0 },
            buckets: self.bounds.iter().copied().zip(self.counts.iter().copied()).collect(),
            overflow: *self.counts.last().expect("counts has bounds.len() + 1 entries"),
        }
    }
}

/// A point-in-time summary of one [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Total observations (including non-finite ones).
    pub count: u64,
    /// Sum of finite observations.
    pub sum: f64,
    /// Smallest finite observation (0 when empty).
    pub min: f64,
    /// Largest finite observation (0 when empty).
    pub max: f64,
    /// `(inclusive upper bound, count)` per bucket.
    pub buckets: Vec<(f64, u64)>,
    /// Observations above the last bound.
    pub overflow: u64,
}

impl HistogramSnapshot {
    /// Mean of the finite observations (0 when empty).
    pub fn mean(&self) -> f64 {
        let finite: u64 = self.buckets.iter().map(|(_, c)| c).sum::<u64>() + self.overflow;
        if finite == 0 {
            0.0
        } else {
            self.sum / finite as f64
        }
    }
}

/// A thread-safe collection of named counters, gauges, and histograms.
///
/// Metric names follow the `subsystem.name.unit` convention documented in
/// `TELEMETRY.md` (e.g. `fdm.solve.seconds`, `nn.adam.steps`).
#[derive(Debug, Default)]
pub struct MetricRegistry {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter (created at zero on first use).
    pub fn counter(&self, name: &str, delta: u64) {
        let mut counters = self.counters.lock().expect("counter map poisoned");
        *counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets the named gauge to `value`.
    pub fn gauge(&self, name: &str, value: f64) {
        let mut gauges = self.gauges.lock().expect("gauge map poisoned");
        gauges.insert(name.to_string(), value);
    }

    /// Records an observation in the named histogram, creating it with
    /// [`Histogram::time_buckets`] on first use.
    pub fn observe(&self, name: &str, value: f64) {
        let mut histograms = self.histograms.lock().expect("histogram map poisoned");
        histograms.entry(name.to_string()).or_insert_with(Histogram::time_buckets).observe(value);
    }

    /// Registers a histogram with custom bucket bounds (replacing any
    /// recorded data under that name).
    pub fn register_histogram(&self, name: &str, histogram: Histogram) {
        let mut histograms = self.histograms.lock().expect("histogram map poisoned");
        histograms.insert(name.to_string(), histogram);
    }

    /// Takes a consistent point-in-time snapshot of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.lock().expect("counter map poisoned").clone(),
            gauges: self.gauges.lock().expect("gauge map poisoned").clone(),
            histograms: self
                .histograms
                .lock()
                .expect("histogram map poisoned")
                .iter()
                .map(|(name, h)| (name.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time snapshot of a [`MetricRegistry`], embedded into the run
/// manifest.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Writes the snapshot as a JSON object into `out`.
    pub fn write_json(&self, out: &mut String) {
        out.push_str("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::value::write_json_string(out, name);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::value::write_json_string(out, name);
            out.push(':');
            write_json_f64(out, *v);
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::value::write_json_string(out, name);
            out.push_str(":{\"count\":");
            out.push_str(&h.count.to_string());
            out.push_str(",\"sum\":");
            write_json_f64(out, h.sum);
            out.push_str(",\"min\":");
            write_json_f64(out, h.min);
            out.push_str(",\"max\":");
            write_json_f64(out, h.max);
            out.push_str(",\"mean\":");
            write_json_f64(out, h.mean());
            out.push_str(",\"buckets\":[");
            let mut first = true;
            for &(bound, count) in &h.buckets {
                if count == 0 {
                    continue; // sparse encoding: empty buckets are elided
                }
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str("{\"le\":");
                write_json_f64(out, bound);
                out.push_str(",\"count\":");
                out.push_str(&count.to_string());
                out.push('}');
            }
            if h.overflow > 0 {
                if !first {
                    out.push(',');
                }
                out.push_str("{\"le\":null,\"count\":");
                out.push_str(&h.overflow.to_string());
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("}}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_upper_inclusive() {
        let mut h = Histogram::new(vec![1.0, 2.0, 5.0]);
        h.observe(1.0); // lands in le=1.0 (inclusive upper bound)
        h.observe(1.0000001); // lands in le=2.0
        h.observe(5.0); // lands in le=5.0
        h.observe(5.1); // overflow
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![(1.0, 1), (2.0, 1), (5.0, 1)]);
        assert_eq!(s.overflow, 1);
        assert_eq!(s.count, 4);
    }

    #[test]
    fn time_buckets_are_monotone_and_span_microseconds_to_minutes() {
        let h = Histogram::time_buckets();
        let bounds = h.bounds();
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must be strictly increasing");
        assert!(bounds[0] <= 1e-6);
        assert!(*bounds.last().unwrap() >= 100.0);
        assert!(bounds.iter().all(|b| b.is_finite() && *b > 0.0));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unordered_bounds_are_rejected() {
        Histogram::new(vec![1.0, 1.0]);
    }

    #[test]
    fn non_finite_observations_count_but_do_not_bucket() {
        let mut h = Histogram::new(vec![1.0]);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.buckets[0].1, 0);
        assert_eq!(s.overflow, 0);
        assert_eq!(s.sum, 0.0);
    }

    #[test]
    fn snapshot_statistics() {
        let mut h = Histogram::new(vec![10.0]);
        for v in [1.0, 2.0, 3.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.sum, 6.0);
        assert!((s.mean() - 2.0).abs() < 1e-15);
    }

    #[test]
    fn registry_accumulates_all_metric_kinds() {
        let r = MetricRegistry::new();
        r.counter("a.b.count", 2);
        r.counter("a.b.count", 3);
        r.gauge("a.lr", 0.1);
        r.gauge("a.lr", 0.05);
        r.observe("a.step.seconds", 0.002);
        let s = r.snapshot();
        assert_eq!(s.counters["a.b.count"], 5);
        assert_eq!(s.gauges["a.lr"], 0.05);
        assert_eq!(s.histograms["a.step.seconds"].count, 1);
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let r = std::sync::Arc::new(MetricRegistry::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        r.counter("t.ops.count", 1);
                        r.observe("t.op.seconds", 1e-4);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = r.snapshot();
        assert_eq!(s.counters["t.ops.count"], 4000);
        assert_eq!(s.histograms["t.op.seconds"].count, 4000);
    }

    #[test]
    fn snapshot_json_is_wellformed() {
        let r = MetricRegistry::new();
        r.counter("c.x.count", 1);
        r.gauge("g.y", 2.5);
        r.observe("h.z.seconds", 0.5);
        let mut json = String::new();
        r.snapshot().write_json(&mut json);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"c.x.count\":1"));
        assert!(json.contains("\"g.y\":2.5"));
        assert!(json.contains("\"le\":0.5"));
    }
}
