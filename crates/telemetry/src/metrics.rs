//! Thread-safe metric primitives: counters, gauges, and log-bucketed
//! quantile histograms, collected in a [`MetricRegistry`].

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::value::write_json_f64;

/// Geometric bucket growth factor. Buckets are 2% wide, so reporting the
/// geometric midpoint of a bucket bounds the relative error of any
/// quantile estimate by `√GAMMA − 1 ≈ 0.995% < 1%`.
#[cfg(test)]
const GAMMA: f64 = 1.02;
/// `ln(GAMMA)`, precomputed so bucket indexing is one `ln` + one divide.
/// (`f64::ln` is not a `const fn`; the value is pinned by a unit test.)
const LN_GAMMA: f64 = 0.019_802_627_296_179_73;
/// `√GAMMA`, the midpoint factor: the estimate for bucket `i` is
/// `bound(i) / SQRT_GAMMA`.
const SQRT_GAMMA: f64 = 1.009_950_493_836_207_8;

/// Inclusive upper bound of log bucket `i`: `GAMMA^i`, evaluated as
/// `exp(i·ln GAMMA)` so the indexing math and the bound math agree bit
/// for bit.
#[inline]
fn bucket_bound(i: i64) -> f64 {
    (i as f64 * LN_GAMMA).exp()
}

/// Index of the log bucket holding `v` (for finite `v > 0`): the unique
/// `i` with `bound(i−1) < v ≤ bound(i)`. The float fix-up loops run at
/// most once in practice; they make the invariant exact despite `ln`/`exp`
/// rounding, so bucketing is deterministic on any host.
fn bucket_index(v: f64) -> i64 {
    debug_assert!(v > 0.0 && v.is_finite());
    let mut i = (v.ln() / LN_GAMMA).ceil() as i64;
    while bucket_bound(i - 1) >= v {
        i -= 1;
    }
    while bucket_bound(i) < v {
        i += 1;
    }
    i
}

/// A log-bucketed (HDR-style) histogram with bounded-error quantiles.
///
/// Observations land in geometric buckets `(GAMMA^(i−1), GAMMA^i]` with
/// `GAMMA = 1.02`, kept sparsely, so the histogram covers the full
/// positive `f64` range with ≤1% relative quantile error and never needs
/// pre-declared bounds. Three side classes keep the bucket math honest:
///
/// * **zero-or-negative** observations (coarse clocks can measure 0)
///   count into a dedicated `zero` bucket below every log bucket;
/// * **non-finite** observations (NaN/±inf) count into a dedicated
///   `nonfinite` counter and are excluded from `count`, `sum`, `mean`,
///   and every quantile — they are visible, never skewing;
/// * `min`/`max` track exact finite extremes, and quantile estimates are
///   clamped into `[min, max]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Sparse log buckets: index → count, ascending (BTreeMap keeps the
    /// walk order deterministic).
    buckets: BTreeMap<i64, u64>,
    /// Finite observations `≤ 0`.
    zero: u64,
    /// NaN / ±inf observations (excluded from all statistics).
    nonfinite: u64,
    /// Finite observations (including the zero bucket).
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    /// Same as [`Histogram::new`]; a derived impl would zero `min`/`max`
    /// instead of the empty sentinels the quantile clamp relies on.
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: BTreeMap::new(),
            zero: 0,
            nonfinite: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation. Non-finite observations bump only the
    /// dedicated `nonfinite` counter; everything finite feeds the
    /// statistics and exactly one bucket.
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            self.nonfinite += 1;
            return;
        }
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v <= 0.0 {
            self.zero += 1;
        } else {
            *self.buckets.entry(bucket_index(v)).or_insert(0) += 1;
        }
    }

    /// Total number of finite observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of non-finite observations seen (not part of [`count`]).
    ///
    /// [`count`]: Histogram::count
    pub fn nonfinite(&self) -> u64 {
        self.nonfinite
    }

    /// An immutable summary of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            nonfinite: self.nonfinite,
            zero: self.zero,
            sum: self.sum,
            min: if self.min.is_finite() { self.min } else { 0.0 },
            max: if self.max.is_finite() { self.max } else { 0.0 },
            buckets: self.buckets.iter().map(|(&i, &c)| (bucket_bound(i), c)).collect(),
        }
    }
}

/// A point-in-time summary of one [`Histogram`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistogramSnapshot {
    /// Finite observations (including the zero bucket).
    pub count: u64,
    /// Non-finite observations — excluded from every other statistic.
    pub nonfinite: u64,
    /// Finite observations `≤ 0`.
    pub zero: u64,
    /// Sum of finite observations.
    pub sum: f64,
    /// Smallest finite observation (0 when empty).
    pub min: f64,
    /// Largest finite observation (0 when empty).
    pub max: f64,
    /// `(inclusive upper bound, count)` per occupied log bucket,
    /// ascending. Bounds are `1.02^i`; the bucket spans
    /// `(bound/1.02, bound]`.
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    /// Mean of the finite observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Nearest-rank quantile estimate with ≤1% relative error for
    /// positive observations: walks the cumulative bucket counts to the
    /// bucket holding the `⌈q·count⌉`-th smallest sample and returns that
    /// bucket's geometric midpoint, clamped into `[min, max]`.
    ///
    /// `q` is clamped to `[0, 1]`; an empty histogram reports 0.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = self.zero;
        if cumulative >= rank {
            // The target sample is ≤ 0: `min` is the only exact statistic
            // we keep for that range.
            return self.min.min(0.0);
        }
        for &(bound, count) in &self.buckets {
            cumulative += count;
            if cumulative >= rank {
                return (bound / SQRT_GAMMA).clamp(self.min, self.max);
            }
        }
        // Unreachable when the invariants hold (cumulative counts sum to
        // `count`); report the largest observation rather than panicking.
        self.max
    }

    /// Median (50th percentile) estimate.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th percentile estimate.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile estimate.
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }
}

/// A thread-safe collection of named counters, gauges, and histograms.
///
/// Metric names follow the `subsystem.name.unit` convention documented in
/// `TELEMETRY.md` (e.g. `fdm.solve.seconds`, `nn.adam.steps`).
#[derive(Debug, Default)]
pub struct MetricRegistry {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter (created at zero on first use).
    pub fn counter(&self, name: &str, delta: u64) {
        let mut counters = self.counters.lock().expect("counter map poisoned");
        *counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets the named gauge to `value`.
    pub fn gauge(&self, name: &str, value: f64) {
        let mut gauges = self.gauges.lock().expect("gauge map poisoned");
        gauges.insert(name.to_string(), value);
    }

    /// Records an observation in the named histogram (created empty on
    /// first use — log buckets need no pre-declared bounds).
    pub fn observe(&self, name: &str, value: f64) {
        let mut histograms = self.histograms.lock().expect("histogram map poisoned");
        histograms.entry(name.to_string()).or_default().observe(value);
    }

    /// Snapshot of one named histogram, if it has recorded anything.
    pub fn histogram_snapshot(&self, name: &str) -> Option<HistogramSnapshot> {
        let histograms = self.histograms.lock().expect("histogram map poisoned");
        histograms.get(name).map(Histogram::snapshot)
    }

    /// Takes a consistent point-in-time snapshot of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.lock().expect("counter map poisoned").clone(),
            gauges: self.gauges.lock().expect("gauge map poisoned").clone(),
            histograms: self
                .histograms
                .lock()
                .expect("histogram map poisoned")
                .iter()
                .map(|(name, h)| (name.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time snapshot of a [`MetricRegistry`], embedded into the run
/// manifest.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Writes the snapshot as a JSON object into `out`.
    pub fn write_json(&self, out: &mut String) {
        out.push_str("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::value::write_json_string(out, name);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::value::write_json_string(out, name);
            out.push(':');
            write_json_f64(out, *v);
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::value::write_json_string(out, name);
            out.push_str(":{\"count\":");
            out.push_str(&h.count.to_string());
            out.push_str(",\"nonfinite\":");
            out.push_str(&h.nonfinite.to_string());
            out.push_str(",\"zero\":");
            out.push_str(&h.zero.to_string());
            out.push_str(",\"sum\":");
            write_json_f64(out, h.sum);
            out.push_str(",\"min\":");
            write_json_f64(out, h.min);
            out.push_str(",\"max\":");
            write_json_f64(out, h.max);
            out.push_str(",\"mean\":");
            write_json_f64(out, h.mean());
            for (label, value) in
                [("p50", h.p50()), ("p90", h.p90()), ("p99", h.p99()), ("p999", h.p999())]
            {
                out.push_str(",\"");
                out.push_str(label);
                out.push_str("\":");
                write_json_f64(out, value);
            }
            out.push_str(",\"buckets\":[");
            for (j, &(bound, count)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("{\"le\":");
                write_json_f64(out, bound);
                out.push_str(",\"count\":");
                out.push_str(&count.to_string());
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("}}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_constants_are_consistent() {
        assert!((LN_GAMMA - GAMMA.ln()).abs() < 1e-18);
        assert!((SQRT_GAMMA - GAMMA.sqrt()).abs() < 1e-15);
        // The documented error bound.
        assert!(GAMMA.sqrt() - 1.0 < 0.01);
    }

    #[test]
    fn bucket_index_invariant_holds_across_magnitudes() {
        for &v in &[1e-9, 2.3e-6, 1e-3, 0.5, 1.0, 1.02, 7.25, 1e4, 3.7e12, 1e300] {
            let i = bucket_index(v);
            assert!(bucket_bound(i - 1) < v, "lower bound open: {v}");
            assert!(v <= bucket_bound(i), "upper bound inclusive: {v}");
        }
        // Exact powers of GAMMA land in their own bucket (inclusive upper).
        let b = bucket_bound(10);
        assert_eq!(bucket_index(b), 10);
    }

    #[test]
    fn observations_land_in_one_bucket_each() {
        let mut h = Histogram::new();
        for v in [0.5, 0.5, 1.7, 400.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.buckets.iter().map(|(_, c)| c).sum::<u64>(), 4);
        assert!(s.buckets.windows(2).all(|w| w[0].0 < w[1].0), "bounds ascend");
    }

    #[test]
    fn non_finite_routes_to_dedicated_counter_not_statistics() {
        let mut h = Histogram::new();
        h.observe(1.0);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(f64::NEG_INFINITY);
        h.observe(3.0);
        let s = h.snapshot();
        assert_eq!(s.nonfinite, 3);
        assert_eq!(s.count, 2, "count excludes non-finite");
        assert_eq!(s.sum, 4.0);
        assert!((s.mean() - 2.0).abs() < 1e-15, "mean unskewed by NaN/inf");
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        // Quantiles ignore the non-finite observations entirely.
        assert!(s.p50() > 0.0 && s.p50().is_finite());
        assert!(s.p999() <= 3.0);
    }

    #[test]
    fn zero_and_negative_observations_use_the_zero_bucket() {
        let mut h = Histogram::new();
        h.observe(0.0);
        h.observe(-2.0);
        h.observe(5.0);
        let s = h.snapshot();
        assert_eq!(s.zero, 2);
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets.iter().map(|(_, c)| c).sum::<u64>(), 1);
        // p50 targets the 2nd smallest sample (0.0): reported from the
        // zero bucket.
        assert!(s.p50() <= 0.0);
        assert_eq!(s.min, -2.0);
    }

    #[test]
    fn quantiles_track_exact_values_within_one_percent() {
        let mut h = Histogram::new();
        let mut values: Vec<f64> = Vec::new();
        // Deterministic multiplicative spread across four decades.
        for i in 0..5000u64 {
            let v = 1e-4 * 1.003f64.powi((i % 2500) as i32) * (1.0 + (i as f64) * 1e-5);
            values.push(v);
            h.observe(v);
        }
        values.sort_by(f64::total_cmp);
        let s = h.snapshot();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1];
            let estimate = s.quantile(q);
            let rel = (estimate - exact).abs() / exact;
            assert!(rel <= 0.01, "q={q}: exact {exact}, estimate {estimate}, rel err {rel}");
        }
    }

    #[test]
    fn single_observation_quantiles_are_exact() {
        let mut h = Histogram::new();
        h.observe(0.125);
        let s = h.snapshot();
        // min==max clamps every quantile to the exact sample.
        for q in [0.0, 0.5, 0.999, 1.0] {
            assert_eq!(s.quantile(q), 0.125);
        }
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.p50(), 0.0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn snapshot_statistics() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 3.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.sum, 6.0);
        assert!((s.mean() - 2.0).abs() < 1e-15);
    }

    #[test]
    fn registry_accumulates_all_metric_kinds() {
        let r = MetricRegistry::new();
        r.counter("a.b.count", 2);
        r.counter("a.b.count", 3);
        r.gauge("a.lr", 0.1);
        r.gauge("a.lr", 0.05);
        r.observe("a.step.seconds", 0.002);
        let s = r.snapshot();
        assert_eq!(s.counters["a.b.count"], 5);
        assert_eq!(s.gauges["a.lr"], 0.05);
        assert_eq!(s.histograms["a.step.seconds"].count, 1);
        let one = r.histogram_snapshot("a.step.seconds").expect("recorded");
        assert_eq!(one.count, 1);
        assert!(r.histogram_snapshot("absent").is_none());
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let r = std::sync::Arc::new(MetricRegistry::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        r.counter("t.ops.count", 1);
                        r.observe("t.op.seconds", 1e-4);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = r.snapshot();
        assert_eq!(s.counters["t.ops.count"], 4000);
        assert_eq!(s.histograms["t.op.seconds"].count, 4000);
    }

    #[test]
    fn snapshot_json_is_wellformed_and_carries_quantiles() {
        let r = MetricRegistry::new();
        r.counter("c.x.count", 1);
        r.gauge("g.y", 2.5);
        r.observe("h.z.seconds", 0.5);
        r.observe("h.z.seconds", f64::NAN);
        let mut json = String::new();
        r.snapshot().write_json(&mut json);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"c.x.count\":1"));
        assert!(json.contains("\"g.y\":2.5"));
        assert!(json.contains("\"nonfinite\":1"));
        assert!(json.contains("\"p50\":0.5"), "{json}");
        assert!(json.contains("\"p999\":0.5"));
        assert!(json.contains("\"le\":"));
    }
}
