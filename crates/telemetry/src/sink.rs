//! Pluggable telemetry sinks: console, JSONL run logs, and an in-memory
//! sink for tests.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

use crate::manifest::RunManifest;
use crate::value::{write_json_f64, write_json_string, Value};

/// The kind of a telemetry [`Event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span with its duration.
    Span,
    /// A gauge update.
    Gauge,
    /// A structured application event (e.g. one training step).
    Event,
}

impl EventKind {
    /// Stable lowercase name used in the JSONL `kind` field.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Gauge => "gauge",
            EventKind::Event => "event",
        }
    }
}

/// One telemetry record delivered to every installed sink.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// What produced the record.
    pub kind: EventKind,
    /// Dotted `subsystem.name` identifier.
    pub name: String,
    /// Time since the recorder was installed.
    pub elapsed: Duration,
    /// Typed payload fields.
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// Writes the event as one JSON object (no trailing newline).
    pub fn write_json(&self, out: &mut String) {
        out.push_str("{\"t\":");
        write_json_f64(out, self.elapsed.as_secs_f64());
        out.push_str(",\"kind\":");
        write_json_string(out, self.kind.name());
        out.push_str(",\"name\":");
        write_json_string(out, &self.name);
        for (key, value) in &self.fields {
            out.push(',');
            write_json_string(out, key);
            out.push(':');
            value.write_json(out);
        }
        out.push('}');
    }
}

/// A destination for telemetry events and the final run manifest.
///
/// Sinks must be cheap and infallible from the caller's point of view:
/// recording failures (e.g. a full disk) are swallowed after being
/// reported once to stderr, never propagated into instrumented code.
pub trait Sink: Send + Sync {
    /// Receives one event.
    fn record(&self, event: &Event);

    /// Receives the final manifest when the run finishes.
    fn manifest(&self, _manifest: &RunManifest) {}

    /// Flushes buffered output.
    fn flush(&self) {}
}

/// Human-readable sink writing aligned lines to stderr.
///
/// ```text
/// [   0.123s] span  fdm.solve seconds=0.0871
/// [   1.456s] event train.step iteration=100 loss=3.2e-2 ...
/// ```
#[derive(Debug, Default)]
pub struct ConsoleSink {
    prefixes: Option<Vec<String>>,
}

impl ConsoleSink {
    /// Creates a console sink printing every event.
    pub fn new() -> Self {
        ConsoleSink { prefixes: None }
    }

    /// Creates a console sink printing only events whose name starts
    /// with one of `prefixes`.
    ///
    /// Useful when a per-iteration instrumented run (which may emit
    /// thousands of events) should surface only coarse progress on the
    /// terminal, e.g. `&["train.loss", "fdm."]`.
    pub fn with_prefixes(prefixes: &[&str]) -> Self {
        ConsoleSink { prefixes: Some(prefixes.iter().map(|p| p.to_string()).collect()) }
    }
}

impl Sink for ConsoleSink {
    fn record(&self, event: &Event) {
        if let Some(prefixes) = &self.prefixes {
            if !prefixes.iter().any(|p| event.name.starts_with(p.as_str())) {
                return;
            }
        }
        let mut line = format!(
            "[{:>9.3}s] {:<5} {}",
            event.elapsed.as_secs_f64(),
            event.kind.name(),
            event.name
        );
        for (key, value) in &event.fields {
            line.push_str(&format!(" {key}={value}"));
        }
        eprintln!("{line}");
    }

    fn manifest(&self, manifest: &RunManifest) {
        eprintln!(
            "[{:>9.3}s] run '{}' finished: {} counters, {} gauges, {} histograms",
            manifest.wall_seconds,
            manifest.name,
            manifest.metrics.counters.len(),
            manifest.metrics.gauges.len(),
            manifest.metrics.histograms.len(),
        );
    }
}

/// Append-only JSONL event log plus a run-manifest JSON written on finish.
///
/// Events go to `<path>`, one JSON object per line; the manifest goes to
/// `<path>` with the extension replaced by `manifest.json` (or a custom
/// path set with [`JsonlSink::with_manifest_path`]).
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
    manifest_path: PathBuf,
    errored: std::sync::atomic::AtomicBool,
}

impl JsonlSink {
    /// Creates (truncating) the JSONL file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
            manifest_path: path.with_extension("manifest.json"),
            errored: std::sync::atomic::AtomicBool::new(false),
        })
    }

    /// Overrides where the final run manifest is written.
    pub fn with_manifest_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.manifest_path = path.into();
        self
    }

    /// Where the final run manifest will be written.
    pub fn manifest_path(&self) -> &Path {
        &self.manifest_path
    }

    fn report_error(&self, what: &str, err: &std::io::Error) {
        use std::sync::atomic::Ordering;
        if !self.errored.swap(true, Ordering::Relaxed) {
            eprintln!("telemetry: {what} failed, further errors suppressed: {err}");
        }
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        let mut line = String::with_capacity(128);
        event.write_json(&mut line);
        line.push('\n');
        let mut writer = self.writer.lock().expect("jsonl writer poisoned");
        if let Err(err) = writer.write_all(line.as_bytes()) {
            self.report_error("event write", &err);
        }
    }

    fn manifest(&self, manifest: &RunManifest) {
        if let Err(err) = std::fs::write(&self.manifest_path, manifest.to_json()) {
            self.report_error("manifest write", &err);
        }
    }

    fn flush(&self) {
        let mut writer = self.writer.lock().expect("jsonl writer poisoned");
        if let Err(err) = writer.flush() {
            self.report_error("flush", &err);
        }
    }
}

/// Test sink capturing events (and the manifest) in memory.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
    manifest: Mutex<Option<RunManifest>>,
}

impl MemorySink {
    /// Creates an empty memory sink; keep an `Arc` to inspect it later.
    pub fn new() -> std::sync::Arc<Self> {
        std::sync::Arc::new(MemorySink::default())
    }

    /// A copy of the captured events.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink poisoned").clone()
    }

    /// The captured manifest, if the run has finished.
    pub fn take_manifest(&self) -> Option<RunManifest> {
        self.manifest.lock().expect("memory sink poisoned").take()
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        self.events.lock().expect("memory sink poisoned").push(event.clone());
    }

    fn manifest(&self, manifest: &RunManifest) {
        *self.manifest.lock().expect("memory sink poisoned") = Some(manifest.clone());
    }
}

impl<S: Sink + ?Sized> Sink for std::sync::Arc<S> {
    fn record(&self, event: &Event) {
        (**self).record(event);
    }

    fn manifest(&self, manifest: &RunManifest) {
        (**self).manifest(manifest);
    }

    fn flush(&self) {
        (**self).flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_event() -> Event {
        Event {
            kind: EventKind::Event,
            name: "train.step".into(),
            elapsed: Duration::from_millis(1500),
            fields: vec![("iteration".into(), Value::U64(3)), ("loss".into(), Value::F64(0.25))],
        }
    }

    #[test]
    fn event_json_shape() {
        let mut out = String::new();
        sample_event().write_json(&mut out);
        assert_eq!(
            out,
            r#"{"t":1.5,"kind":"event","name":"train.step","iteration":3,"loss":0.25}"#
        );
    }

    #[test]
    fn jsonl_sink_appends_lines_and_writes_manifest() {
        let dir =
            std::env::temp_dir().join(format!("deepoheat-telemetry-test-{}", std::process::id()));
        let path = dir.join("run.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        sink.record(&sample_event());
        sink.record(&sample_event());
        sink.flush();
        let contents = std::fs::read_to_string(&path).unwrap();
        assert_eq!(contents.lines().count(), 2);
        assert!(contents.lines().all(|l| l.starts_with('{') && l.ends_with('}')));

        let manifest = RunManifest::empty_for_tests("demo");
        sink.manifest(&manifest);
        let manifest_json = std::fs::read_to_string(sink.manifest_path()).unwrap();
        assert!(manifest_json.contains("\"name\":\"demo\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn memory_sink_captures_events() {
        let sink = MemorySink::new();
        sink.record(&sample_event());
        assert_eq!(sink.events().len(), 1);
        assert_eq!(sink.events()[0].name, "train.step");
        assert!(sink.take_manifest().is_none());
    }

    #[test]
    fn console_prefix_filter_matches_name_prefixes() {
        let sink = ConsoleSink::with_prefixes(&["train.loss", "fdm."]);
        let matches = |name: &str| {
            sink.prefixes.as_ref().unwrap().iter().any(|p| name.starts_with(p.as_str()))
        };
        assert!(matches("train.loss"));
        assert!(matches("fdm.solve"));
        assert!(!matches("train.step"));
        assert!(!matches("nn.adam.lr"));
        assert!(ConsoleSink::new().prefixes.is_none());
    }
}
