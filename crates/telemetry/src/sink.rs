//! Pluggable telemetry sinks: console, JSONL run logs, and an in-memory
//! sink for tests.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

use crate::manifest::RunManifest;
use crate::value::{write_json_f64, write_json_string, Value};

/// The kind of a telemetry [`Event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span with its duration.
    Span,
    /// A gauge update.
    Gauge,
    /// A structured application event (e.g. one training step).
    Event,
}

impl EventKind {
    /// Stable lowercase name used in the JSONL `kind` field.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Gauge => "gauge",
            EventKind::Event => "event",
        }
    }
}

/// One telemetry record delivered to every installed sink.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// What produced the record.
    pub kind: EventKind,
    /// Dotted `subsystem.name` identifier.
    pub name: String,
    /// Time since the recorder was installed.
    pub elapsed: Duration,
    /// Typed payload fields.
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// Writes the event as one JSON object (no trailing newline).
    pub fn write_json(&self, out: &mut String) {
        out.push_str("{\"t\":");
        write_json_f64(out, self.elapsed.as_secs_f64());
        out.push_str(",\"kind\":");
        write_json_string(out, self.kind.name());
        out.push_str(",\"name\":");
        write_json_string(out, &self.name);
        for (key, value) in &self.fields {
            out.push(',');
            write_json_string(out, key);
            out.push(':');
            value.write_json(out);
        }
        out.push('}');
    }
}

/// A destination for telemetry events and the final run manifest.
///
/// Sinks must be cheap and infallible from the caller's point of view:
/// recording failures (e.g. a full disk) are swallowed after being
/// reported once to stderr, never propagated into instrumented code.
pub trait Sink: Send + Sync {
    /// Receives one event.
    fn record(&self, event: &Event);

    /// Receives the final manifest when the run finishes.
    fn manifest(&self, _manifest: &RunManifest) {}

    /// Flushes buffered output.
    fn flush(&self) {}
}

/// Human-readable sink writing aligned lines to stderr.
///
/// ```text
/// [   0.123s] span  fdm.solve seconds=0.0871
/// [   1.456s] event train.step iteration=100 loss=3.2e-2 ...
/// ```
#[derive(Debug, Default)]
pub struct ConsoleSink {
    prefixes: Option<Vec<String>>,
}

impl ConsoleSink {
    /// Creates a console sink printing every event.
    pub fn new() -> Self {
        ConsoleSink { prefixes: None }
    }

    /// Creates a console sink printing only events whose name starts
    /// with one of `prefixes`.
    ///
    /// Useful when a per-iteration instrumented run (which may emit
    /// thousands of events) should surface only coarse progress on the
    /// terminal, e.g. `&["train.loss", "fdm."]`.
    pub fn with_prefixes(prefixes: &[&str]) -> Self {
        ConsoleSink { prefixes: Some(prefixes.iter().map(|p| p.to_string()).collect()) }
    }
}

impl Sink for ConsoleSink {
    fn record(&self, event: &Event) {
        if let Some(prefixes) = &self.prefixes {
            if !prefixes.iter().any(|p| event.name.starts_with(p.as_str())) {
                return;
            }
        }
        let mut line = format!(
            "[{:>9.3}s] {:<5} {}",
            event.elapsed.as_secs_f64(),
            event.kind.name(),
            event.name
        );
        for (key, value) in &event.fields {
            line.push_str(&format!(" {key}={value}"));
        }
        eprintln!("{line}");
    }

    fn manifest(&self, manifest: &RunManifest) {
        eprintln!(
            "[{:>9.3}s] run '{}' finished: {} counters, {} gauges, {} histograms",
            manifest.wall_seconds,
            manifest.name,
            manifest.metrics.counters.len(),
            manifest.metrics.gauges.len(),
            manifest.metrics.histograms.len(),
        );
    }
}

/// Append-only JSONL event log plus a run-manifest JSON written on finish.
///
/// Events go to `<path>`, one JSON object per line; the manifest goes to
/// `<path>` with the extension replaced by `manifest.json` (or a custom
/// path set with [`JsonlSink::with_manifest_path`]).
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
    manifest_path: PathBuf,
    errored: std::sync::atomic::AtomicBool,
}

impl JsonlSink {
    /// Creates (truncating) the JSONL file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
            manifest_path: path.with_extension("manifest.json"),
            errored: std::sync::atomic::AtomicBool::new(false),
        })
    }

    /// Opens the JSONL file at `path` for appending, first repairing the
    /// tail of any existing log: a torn final line left by a crash
    /// mid-write (missing its newline, or not a complete `{…}` object) is
    /// truncated away so every surviving line stays machine-readable.
    ///
    /// Combined with the fsync in [`Sink::flush`], this gives the same
    /// torn-write discipline as the DOHC checkpoint format: a reader never
    /// sees a partial record, only a log that is at most one flush behind.
    ///
    /// # Errors
    ///
    /// Propagates file-open, read and truncation errors.
    pub fn append(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        match std::fs::read(path) {
            Ok(bytes) => {
                let keep = valid_jsonl_prefix_len(&bytes);
                if keep < bytes.len() {
                    eprintln!(
                        "telemetry: dropping torn final line ({} byte(s)) from {}",
                        bytes.len() - keep,
                        path.display()
                    );
                    let file = std::fs::OpenOptions::new().write(true).open(path)?;
                    file.set_len(keep as u64)?;
                    file.sync_all()?;
                }
            }
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => {}
            Err(err) => return Err(err),
        }
        let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
            manifest_path: path.with_extension("manifest.json"),
            errored: std::sync::atomic::AtomicBool::new(false),
        })
    }

    /// Overrides where the final run manifest is written.
    pub fn with_manifest_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.manifest_path = path.into();
        self
    }

    /// Where the final run manifest will be written.
    pub fn manifest_path(&self) -> &Path {
        &self.manifest_path
    }

    fn report_error(&self, what: &str, err: &std::io::Error) {
        use std::sync::atomic::Ordering;
        if !self.errored.swap(true, Ordering::Relaxed) {
            eprintln!("telemetry: {what} failed, further errors suppressed: {err}");
        }
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        let mut line = String::with_capacity(128);
        event.write_json(&mut line);
        line.push('\n');
        let mut writer = self.writer.lock().expect("jsonl writer poisoned");
        if let Err(err) = writer.write_all(line.as_bytes()) {
            self.report_error("event write", &err);
        }
    }

    fn manifest(&self, manifest: &RunManifest) {
        // Write-then-rename so a crash mid-write can never leave a torn
        // manifest: readers see either the old file or the complete new one.
        let tmp = self.manifest_path.with_extension("manifest.json.tmp");
        let result = std::fs::write(&tmp, manifest.to_json())
            .and_then(|()| File::open(&tmp)?.sync_all())
            .and_then(|()| std::fs::rename(&tmp, &self.manifest_path));
        if let Err(err) = result {
            std::fs::remove_file(&tmp).ok();
            self.report_error("manifest write", &err);
        }
    }

    fn flush(&self) {
        let mut writer = self.writer.lock().expect("jsonl writer poisoned");
        // Flush the buffer, then fsync so flushed lines survive a crash —
        // `append` relies on this to bound loss to the post-flush tail.
        if let Err(err) = writer.flush().and_then(|()| writer.get_ref().sync_all()) {
            self.report_error("flush", &err);
        }
    }
}

/// Byte length of the longest prefix of `bytes` made of complete JSONL
/// records: newline-terminated lines whose final line looks like a whole
/// JSON object (`{…}`). Anything past it is a torn write.
fn valid_jsonl_prefix_len(bytes: &[u8]) -> usize {
    // Drop bytes after the last newline (a line still being written).
    let Some(last_newline) = bytes.iter().rposition(|&b| b == b'\n') else {
        return 0;
    };
    let end = last_newline + 1;
    // The final complete line must be a whole object: a crash between
    // `write` syscalls can persist `{"t":1.2,"kind"` + a later buffer
    // starting with `\n`, leaving a newline-terminated torn record.
    let body = &bytes[..last_newline];
    let line_start = body.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
    let line = &body[line_start..];
    if line.first() == Some(&b'{') && line.last() == Some(&b'}') {
        end
    } else {
        line_start
    }
}

/// Test sink capturing events (and the manifest) in memory.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
    manifest: Mutex<Option<RunManifest>>,
}

impl MemorySink {
    /// Creates an empty memory sink; keep an `Arc` to inspect it later.
    pub fn new() -> std::sync::Arc<Self> {
        std::sync::Arc::new(MemorySink::default())
    }

    /// A copy of the captured events.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink poisoned").clone()
    }

    /// The captured manifest, if the run has finished.
    pub fn take_manifest(&self) -> Option<RunManifest> {
        self.manifest.lock().expect("memory sink poisoned").take()
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        self.events.lock().expect("memory sink poisoned").push(event.clone());
    }

    fn manifest(&self, manifest: &RunManifest) {
        *self.manifest.lock().expect("memory sink poisoned") = Some(manifest.clone());
    }
}

impl<S: Sink + ?Sized> Sink for std::sync::Arc<S> {
    fn record(&self, event: &Event) {
        (**self).record(event);
    }

    fn manifest(&self, manifest: &RunManifest) {
        (**self).manifest(manifest);
    }

    fn flush(&self) {
        (**self).flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_event() -> Event {
        Event {
            kind: EventKind::Event,
            name: "train.step".into(),
            elapsed: Duration::from_millis(1500),
            fields: vec![("iteration".into(), Value::U64(3)), ("loss".into(), Value::F64(0.25))],
        }
    }

    #[test]
    fn event_json_shape() {
        let mut out = String::new();
        sample_event().write_json(&mut out);
        assert_eq!(
            out,
            r#"{"t":1.5,"kind":"event","name":"train.step","iteration":3,"loss":0.25}"#
        );
    }

    #[test]
    fn jsonl_sink_appends_lines_and_writes_manifest() {
        let dir =
            std::env::temp_dir().join(format!("deepoheat-telemetry-test-{}", std::process::id()));
        let path = dir.join("run.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        sink.record(&sample_event());
        sink.record(&sample_event());
        sink.flush();
        let contents = std::fs::read_to_string(&path).unwrap();
        assert_eq!(contents.lines().count(), 2);
        assert!(contents.lines().all(|l| l.starts_with('{') && l.ends_with('}')));

        let manifest = RunManifest::empty_for_tests("demo");
        sink.manifest(&manifest);
        let manifest_json = std::fs::read_to_string(sink.manifest_path()).unwrap();
        assert!(manifest_json.contains("\"name\":\"demo\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn valid_prefix_keeps_whole_records_only() {
        // Intact log: everything kept.
        let intact = b"{\"t\":1}\n{\"t\":2}\n";
        assert_eq!(valid_jsonl_prefix_len(intact), intact.len());
        // Torn tail without a newline: dropped back to the last newline.
        let torn = b"{\"t\":1}\n{\"t\":2,\"kin";
        assert_eq!(valid_jsonl_prefix_len(torn), 8);
        // Newline-terminated but incomplete object: dropped too.
        let half = b"{\"t\":1}\n\"t\":2}\n";
        assert_eq!(valid_jsonl_prefix_len(half), 8);
        // No newline at all.
        assert_eq!(valid_jsonl_prefix_len(b"{\"t\""), 0);
        assert_eq!(valid_jsonl_prefix_len(b""), 0);
    }

    #[test]
    fn append_truncates_torn_final_line_and_appends() {
        let dir =
            std::env::temp_dir().join(format!("deepoheat-telemetry-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        std::fs::write(&path, "{\"t\":1,\"kind\":\"event\",\"name\":\"a\"}\n{\"t\":2,\"kin")
            .unwrap();

        let sink = JsonlSink::append(&path).unwrap();
        sink.record(&sample_event());
        sink.flush();

        let contents = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = contents.lines().collect();
        assert_eq!(lines.len(), 2, "{contents:?}");
        assert!(lines[0].contains("\"name\":\"a\""));
        assert!(lines[1].contains("\"name\":\"train.step\""));
        assert!(contents.ends_with('\n'));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_preserves_an_intact_log() {
        let dir =
            std::env::temp_dir().join(format!("deepoheat-telemetry-intact-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        {
            let sink = JsonlSink::append(&path).unwrap();
            sink.record(&sample_event());
            sink.flush();
        }
        {
            let sink = JsonlSink::append(&path).unwrap();
            sink.record(&sample_event());
            sink.flush();
        }
        let contents = std::fs::read_to_string(&path).unwrap();
        assert_eq!(contents.lines().count(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_write_is_atomic_via_rename() {
        let dir = std::env::temp_dir()
            .join(format!("deepoheat-telemetry-manifest-{}", std::process::id()));
        let path = dir.join("run.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        sink.manifest(&RunManifest::empty_for_tests("demo"));
        assert!(sink.manifest_path().exists());
        // The temp file must not linger after a successful rename.
        assert!(!sink.manifest_path().with_extension("manifest.json.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn memory_sink_captures_events() {
        let sink = MemorySink::new();
        sink.record(&sample_event());
        assert_eq!(sink.events().len(), 1);
        assert_eq!(sink.events()[0].name, "train.step");
        assert!(sink.take_manifest().is_none());
    }

    #[test]
    fn console_prefix_filter_matches_name_prefixes() {
        let sink = ConsoleSink::with_prefixes(&["train.loss", "fdm."]);
        let matches = |name: &str| {
            sink.prefixes.as_ref().unwrap().iter().any(|p| name.starts_with(p.as_str()))
        };
        assert!(matches("train.loss"));
        assert!(matches("fdm.solve"));
        assert!(!matches("train.step"));
        assert!(!matches("nn.adam.lr"));
        assert!(ConsoleSink::new().prefixes.is_none());
    }
}
