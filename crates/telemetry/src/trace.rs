//! Span-tree reconstruction from the JSONL event stream, and a
//! folded-stack export for flamegraph tooling.
//!
//! Every `span` event in the JSONL log carries `trace`/`span` IDs plus a
//! `parent` link (absent for trace roots). [`SpanRecord::from_jsonl_line`]
//! recovers those records, and [`fold_stacks`] rebuilds the trees and
//! renders them in the folded-stack format consumed by `flamegraph.pl`,
//! `inferno`, and speedscope: one `root;child;leaf <microseconds>` line
//! per unique stack, aggregated over all traces.

use std::collections::BTreeMap;

use crate::sink::{Event, EventKind};
use crate::value::Value;

/// One completed span recovered from the event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace: u64,
    /// Unique (per process) span ID.
    pub span: u64,
    /// Parent span ID (`None` for a trace root).
    pub parent: Option<u64>,
    /// Span name, e.g. `serve.request`.
    pub name: String,
    /// Wall-clock duration.
    pub seconds: f64,
}

impl SpanRecord {
    /// Extracts a record from an in-memory [`Event`], or `None` if the
    /// event is not a span or predates trace IDs.
    pub fn from_event(event: &Event) -> Option<SpanRecord> {
        if event.kind != EventKind::Span {
            return None;
        }
        let get_u64 = |key: &str| {
            event.fields.iter().find(|(k, _)| k == key).and_then(|(_, v)| match v {
                Value::U64(n) => Some(*n),
                _ => None,
            })
        };
        let seconds =
            event.fields.iter().find(|(k, _)| k == "seconds").and_then(|(_, v)| match v {
                Value::F64(s) => Some(*s),
                _ => None,
            })?;
        Some(SpanRecord {
            trace: get_u64("trace")?,
            span: get_u64("span")?,
            parent: get_u64("parent"),
            name: event.name.clone(),
            seconds,
        })
    }

    /// Parses one JSONL line into a record, or `None` for non-span lines
    /// (gauges, application events) and span lines without trace IDs.
    ///
    /// This is a targeted extractor for the fixed shape `Event::write_json`
    /// produces — top-level `"key":value` pairs with no nested objects —
    /// not a general JSON parser.
    pub fn from_jsonl_line(line: &str) -> Option<SpanRecord> {
        let line = line.trim();
        if !line.starts_with('{') || !line.ends_with('}') {
            return None;
        }
        if json_str_field(line, "kind")? != "span" {
            return None;
        }
        Some(SpanRecord {
            trace: json_u64_field(line, "trace")?,
            span: json_u64_field(line, "span")?,
            parent: json_u64_field(line, "parent"),
            name: json_str_field(line, "name")?.to_string(),
            seconds: json_f64_field(line, "seconds")?,
        })
    }
}

/// The raw text following `"key":` in `line`, up to the value's end.
fn json_raw_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    Some(&line[start..])
}

/// A string-valued field (no escape handling — metric/span names written
/// by this crate never need escapes; an escaped name simply fails to
/// match).
fn json_str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = json_raw_field(line, key)?.strip_prefix('"')?;
    rest.split('"').next()
}

fn json_num_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = json_raw_field(line, key)?;
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    if end == 0 {
        None
    } else {
        Some(&rest[..end])
    }
}

fn json_u64_field(line: &str, key: &str) -> Option<u64> {
    json_num_field(line, key)?.parse().ok()
}

fn json_f64_field(line: &str, key: &str) -> Option<f64> {
    json_num_field(line, key)?.parse().ok()
}

/// Renders span records as folded stacks: `a;b;c <microseconds>` per
/// unique stack, where the value is the stack's **self time** (span
/// duration minus direct children, clamped at 0), aggregated across every
/// occurrence and sorted lexicographically so output is deterministic.
///
/// Spans whose parent is missing from `records` (e.g. the log was
/// truncated mid-run) are treated as roots rather than dropped, so a
/// partial log still profiles cleanly.
pub fn fold_stacks(records: &[SpanRecord]) -> String {
    let by_id: BTreeMap<u64, &SpanRecord> = records.iter().map(|r| (r.span, r)).collect();
    // Direct-children time per parent span, for self-time computation.
    let mut child_seconds: BTreeMap<u64, f64> = BTreeMap::new();
    for r in records {
        if let Some(parent) = r.parent {
            if by_id.contains_key(&parent) {
                *child_seconds.entry(parent).or_insert(0.0) += r.seconds;
            }
        }
    }

    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for r in records {
        // Walk parent links up to the root to build the stack path.
        let mut stack = vec![r.name.as_str()];
        let mut cursor = r.parent;
        // Depth guard: a cycle can only come from a corrupt log, but a
        // profiler must not hang on one.
        let mut depth = 0;
        while let Some(parent) = cursor.and_then(|id| by_id.get(&id)) {
            stack.push(parent.name.as_str());
            cursor = parent.parent;
            depth += 1;
            if depth > 512 {
                break;
            }
        }
        stack.reverse();
        let self_seconds =
            (r.seconds - child_seconds.get(&r.span).copied().unwrap_or(0.0)).max(0.0);
        let micros = (self_seconds * 1e6).round() as u64;
        *folded.entry(stack.join(";")).or_insert(0) += micros;
    }

    let mut out = String::new();
    for (stack, micros) in &folded {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&micros.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn span_event(name: &str, trace: u64, span: u64, parent: Option<u64>, secs: f64) -> Event {
        let mut fields = vec![
            ("seconds".to_string(), Value::F64(secs)),
            ("trace".to_string(), Value::U64(trace)),
            ("span".to_string(), Value::U64(span)),
        ];
        if let Some(p) = parent {
            fields.push(("parent".to_string(), Value::U64(p)));
        }
        Event { kind: EventKind::Span, name: name.to_string(), elapsed: Duration::ZERO, fields }
    }

    #[test]
    fn from_event_roundtrip() {
        let rec = SpanRecord::from_event(&span_event("a.b", 7, 9, Some(3), 0.25)).unwrap();
        assert_eq!(rec.trace, 7);
        assert_eq!(rec.span, 9);
        assert_eq!(rec.parent, Some(3));
        assert_eq!(rec.name, "a.b");
        assert_eq!(rec.seconds, 0.25);
        // Root spans have no parent field.
        let root = SpanRecord::from_event(&span_event("r", 7, 1, None, 1.0)).unwrap();
        assert_eq!(root.parent, None);
    }

    #[test]
    fn from_event_rejects_non_spans_and_untraced_spans() {
        let gauge = Event {
            kind: EventKind::Gauge,
            name: "g".into(),
            elapsed: Duration::ZERO,
            fields: vec![("value".into(), Value::F64(1.0))],
        };
        assert!(SpanRecord::from_event(&gauge).is_none());
        let untraced = Event {
            kind: EventKind::Span,
            name: "s".into(),
            elapsed: Duration::ZERO,
            fields: vec![("seconds".into(), Value::F64(1.0))],
        };
        assert!(SpanRecord::from_event(&untraced).is_none());
    }

    #[test]
    fn jsonl_line_roundtrips_through_event_writer() {
        let event = span_event("serve.request", 42, 100, Some(99), 0.001953125);
        let mut line = String::new();
        event.write_json(&mut line);
        let rec = SpanRecord::from_jsonl_line(&line).unwrap();
        assert_eq!(rec.trace, 42);
        assert_eq!(rec.span, 100);
        assert_eq!(rec.parent, Some(99));
        assert_eq!(rec.name, "serve.request");
        assert_eq!(rec.seconds, 0.001953125);
    }

    #[test]
    fn jsonl_line_skips_other_kinds_and_garbage() {
        assert!(SpanRecord::from_jsonl_line(r#"{"t":1,"kind":"gauge","name":"g"}"#).is_none());
        assert!(SpanRecord::from_jsonl_line("not json").is_none());
        assert!(SpanRecord::from_jsonl_line("").is_none());
        // Span without IDs (pre-tracing log): skipped, not an error.
        assert!(SpanRecord::from_jsonl_line(r#"{"t":1,"kind":"span","name":"s","seconds":0.5}"#)
            .is_none());
    }

    #[test]
    fn fold_stacks_builds_paths_and_self_time() {
        let records = vec![
            SpanRecord { trace: 1, span: 1, parent: None, name: "root".into(), seconds: 1.0 },
            SpanRecord { trace: 1, span: 2, parent: Some(1), name: "mid".into(), seconds: 0.6 },
            SpanRecord { trace: 1, span: 3, parent: Some(2), name: "leaf".into(), seconds: 0.2 },
        ];
        let folded = fold_stacks(&records);
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(
            lines,
            vec!["root 400000", "root;mid 400000", "root;mid;leaf 200000"],
            "{folded}"
        );
    }

    #[test]
    fn fold_stacks_aggregates_repeated_stacks() {
        let records = vec![
            SpanRecord { trace: 1, span: 1, parent: None, name: "req".into(), seconds: 0.001 },
            SpanRecord { trace: 2, span: 2, parent: None, name: "req".into(), seconds: 0.002 },
        ];
        assert_eq!(fold_stacks(&records), "req 3000\n");
    }

    #[test]
    fn fold_stacks_treats_missing_parents_as_roots() {
        // Parent span 99 was lost to log truncation.
        let records = vec![SpanRecord {
            trace: 1,
            span: 2,
            parent: Some(99),
            name: "orphan".into(),
            seconds: 0.5,
        }];
        assert_eq!(fold_stacks(&records), "orphan 500000\n");
    }

    #[test]
    fn fold_stacks_clamps_negative_self_time() {
        // Child measured longer than parent (clock skew / overlap): the
        // parent's self time clamps to 0 instead of going negative.
        let records = vec![
            SpanRecord { trace: 1, span: 1, parent: None, name: "p".into(), seconds: 0.1 },
            SpanRecord { trace: 1, span: 2, parent: Some(1), name: "c".into(), seconds: 0.3 },
        ];
        let folded = fold_stacks(&records);
        assert_eq!(folded, "p 0\np;c 300000\n");
    }

    #[test]
    fn fold_stacks_empty_input() {
        assert_eq!(fold_stacks(&[]), "");
    }
}
