//! Field values carried by telemetry events, with JSON rendering.

use std::fmt;

/// A single typed field value attached to an [`crate::Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An unsigned integer (counters, iteration indices).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A floating-point number (losses, residuals, seconds).
    F64(f64),
    /// A boolean flag.
    Bool(bool),
    /// A string (modes, labels).
    Str(String),
    /// A list of floats (residual histories, loss curves).
    F64List(Vec<f64>),
}

impl Value {
    /// Writes the value as JSON into `out`.
    ///
    /// Non-finite floats have no JSON representation and are rendered as
    /// `null` (matching what `serde_json` does by default).
    pub fn write_json(&self, out: &mut String) {
        match self {
            Value::U64(v) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
            }
            Value::I64(v) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
            }
            Value::F64(v) => write_json_f64(out, *v),
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Value::Str(s) => write_json_string(out, s),
            Value::F64List(vs) => {
                out.push('[');
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_f64(out, *v);
                }
                out.push(']');
            }
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<Vec<f64>> for Value {
    fn from(v: Vec<f64>) -> Self {
        Value::F64List(v)
    }
}

impl From<&[f64]> for Value {
    fn from(v: &[f64]) -> Self {
        Value::F64List(v.to_vec())
    }
}

impl fmt::Display for Value {
    /// Human-readable rendering used by the console sink.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => {
                if *v == 0.0 || (1e-3..1e6).contains(&v.abs()) {
                    write!(f, "{v:.6}")
                } else {
                    write!(f, "{v:.4e}")
                }
            }
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::F64List(vs) => write!(f, "[{} values]", vs.len()),
        }
    }
}

/// Writes an `f64` as JSON (non-finite becomes `null`).
pub(crate) fn write_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{v:?}` keeps round-trip precision and always includes a `.0`
        // or exponent so the token re-parses as a float.
        let _ = fmt::Write::write_fmt(out, format_args!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

/// Writes a JSON string literal with the mandatory escapes.
pub(crate) fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json(v: &Value) -> String {
        let mut s = String::new();
        v.write_json(&mut s);
        s
    }

    #[test]
    fn scalar_json_forms() {
        assert_eq!(json(&Value::U64(7)), "7");
        assert_eq!(json(&Value::I64(-3)), "-3");
        assert_eq!(json(&Value::Bool(true)), "true");
        assert_eq!(json(&Value::F64(1.5)), "1.5");
        assert_eq!(json(&Value::F64(f64::NAN)), "null");
        assert_eq!(json(&Value::F64(f64::INFINITY)), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json(&Value::Str("a\"b\\c\nd".into())), r#""a\"b\\c\nd""#);
        assert_eq!(json(&Value::Str("\u{1}".into())), "\"\\u0001\"");
    }

    #[test]
    fn lists_render_as_arrays() {
        assert_eq!(json(&Value::F64List(vec![1.0, 0.5])), "[1.0,0.5]");
        assert_eq!(json(&Value::F64List(vec![])), "[]");
    }

    #[test]
    fn floats_round_trip_through_json() {
        for &v in &[1e-300, 0.1 + 0.2, 123456.789, -4.2e17] {
            let s = json(&Value::F64(v));
            let back: f64 = s.parse().unwrap();
            assert_eq!(back, v, "{s}");
        }
    }

    #[test]
    fn from_impls_choose_expected_variants() {
        assert_eq!(Value::from(3usize), Value::U64(3));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(vec![1.0]), Value::F64List(vec![1.0]));
    }
}
