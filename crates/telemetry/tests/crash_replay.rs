#![deny(unsafe_code)]
//! Crash-replay discipline for the JSONL event log: a run that appends to
//! the log a crashed predecessor left behind must (1) drop the torn final
//! line, (2) preserve every complete line, (3) leave a log in which
//! *every* line parses as a complete JSON object, and (4) write the run
//! manifest atomically with no temp-file residue — so post-mortem tooling
//! (span-tree reconstruction, flamegraph folding) always works on
//! whatever the disk holds.

use std::fs;
use std::path::PathBuf;

use deepoheat_telemetry as telemetry;
use telemetry::JsonlSink;

/// A scratch dir unique to this test process, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new() -> Self {
        let dir =
            std::env::temp_dir().join(format!("deepoheat-crash-replay-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("create scratch dir");
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

// One test function: the recorder is process-global, so concurrent
// install()/finish() from sibling tests would interleave runs.
#[test]
fn replay_after_torn_tail_yields_a_fully_parseable_log_and_atomic_manifest() {
    let scratch = ScratchDir::new();
    let events_path = scratch.0.join("events.jsonl");
    let manifest_path = scratch.0.join("run.manifest.json");

    // --- the crashed predecessor: two flushed lines + a torn tail -------
    let survivor_a =
        r#"{"t":0.01,"kind":"span","name":"serve.request","seconds":0.004,"trace":1,"span":1}"#;
    let survivor_b = r#"{"t":0.02,"kind":"gauge","name":"train.loss","value":3.5}"#;
    fs::write(&events_path, format!("{survivor_a}\n{survivor_b}\n{{\"t\":0.03,\"kind\":\"ev"))
        .expect("write torn log");

    // --- the replaying run: append, record a span tree, finish ----------
    let sink = JsonlSink::append(&events_path)
        .expect("reopen torn log")
        .with_manifest_path(&manifest_path);
    telemetry::Recorder::builder("crash_replay").sink(Box::new(sink)).install();
    {
        let _request = telemetry::span("serve.request");
        let _trunk = telemetry::span("serve.trunk");
        telemetry::counter("serve.queries", 8);
        telemetry::observe("probe.sum", 1.25);
    }
    telemetry::flush();
    let manifest = telemetry::finish().expect("manifest returned");
    assert_eq!(manifest.name, "crash_replay");

    // --- (1)+(2)+(3): the log is complete lines, old and new ------------
    let replayed = fs::read_to_string(&events_path).expect("re-read log");
    let lines: Vec<&str> = replayed.lines().collect();
    assert_eq!(lines[0], survivor_a, "pre-crash lines must survive the repair");
    assert_eq!(lines[1], survivor_b);
    assert!(
        !replayed.contains("\"kind\":\"ev"),
        "the torn fragment must be dropped, log:\n{replayed}"
    );
    assert!(replayed.ends_with('\n'), "log must be newline-terminated");
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "every line must be a complete JSON object, got: {line}"
        );
    }

    // --- span-tree reconstruction works on the replayed log -------------
    let spans: Vec<telemetry::SpanRecord> =
        lines.iter().filter_map(|l| telemetry::SpanRecord::from_jsonl_line(l)).collect();
    // The surviving pre-crash span plus this run's request + trunk.
    assert_eq!(spans.len(), 3, "spans: {spans:?}");
    let folded = telemetry::fold_stacks(&spans);
    assert!(
        folded.lines().any(|l| l.starts_with("serve.request;serve.trunk ")),
        "folded stacks must nest trunk under request:\n{folded}"
    );

    // --- (4): manifest written atomically, no temp residue --------------
    let manifest_text = fs::read_to_string(&manifest_path).expect("manifest exists");
    assert!(manifest_text.contains("\"serve.queries\""), "{manifest_text}");
    assert!(manifest_text.contains("\"probe.sum\""), "{manifest_text}");
    let residue: Vec<String> = fs::read_dir(&scratch.0)
        .expect("scan scratch dir")
        .filter_map(Result::ok)
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".tmp"))
        .collect();
    assert!(residue.is_empty(), "atomic write left temp files: {residue:?}");
}
