#![deny(unsafe_code)]
//! End-to-end accuracy check for the log-bucketed quantile histograms:
//! against large deterministic sample sets spanning several orders of
//! magnitude, every reported quantile must sit within 1% relative error
//! of the exact nearest-rank quantile computed from the sorted samples —
//! the bound the γ = 1.02 bucket geometry promises (√γ − 1 ≈ 0.995%).

use deepoheat_telemetry::Histogram;

/// Deterministic xorshift64* generator — no RNG dependency, same stream
/// on every platform.
struct XorShift(u64);

impl XorShift {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in [0, 1).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Exact nearest-rank quantile of a sorted sample set.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let rank = (q * sorted.len() as f64).ceil().clamp(1.0, sorted.len() as f64) as usize;
    sorted[rank - 1]
}

/// Feeds `samples` through a histogram and asserts each requested
/// quantile is within 1% of the exact value.
fn assert_quantiles_within_one_percent(label: &str, samples: &[f64]) {
    let mut hist = Histogram::new();
    for &v in samples {
        hist.observe(v);
    }
    let snap = hist.snapshot();
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    for (q, estimate) in
        [(0.5, snap.p50()), (0.9, snap.p90()), (0.99, snap.p99()), (0.999, snap.p999())]
    {
        let exact = exact_quantile(&sorted, q);
        let rel = ((estimate - exact) / exact).abs();
        assert!(
            rel <= 0.01,
            "{label}: q={q}: estimate {estimate} vs exact {exact} (rel err {rel:.5})"
        );
    }
}

#[test]
fn lognormal_like_latencies_quantiles_within_one_percent() {
    // Multiplicative spread shaped like request latencies: a ~1 ms body
    // with a heavy right tail out to hundreds of ms. exp(N(ln 1e-3, σ))
    // approximated via a sum of uniforms for the normal.
    let mut rng = XorShift(0x9e37_79b9_7f4a_7c15);
    let samples: Vec<f64> = (0..20_000)
        .map(|_| {
            let normal = (0..12).map(|_| rng.next_f64()).sum::<f64>() - 6.0; // ~N(0, 1)
            (-3.0f64 * std::f64::consts::LN_10 + 1.2 * normal).exp()
        })
        .collect();
    assert_quantiles_within_one_percent("lognormal", &samples);
}

#[test]
fn uniform_samples_quantiles_within_one_percent() {
    let mut rng = XorShift(42);
    let samples: Vec<f64> = (0..10_000).map(|_| 0.5 + rng.next_f64() * 9.5).collect();
    assert_quantiles_within_one_percent("uniform", &samples);
}

#[test]
fn bimodal_cache_hit_miss_quantiles_within_one_percent() {
    // Two tight modes three orders of magnitude apart — the cache-hit vs
    // cache-miss shape where bucket-boundary effects bite hardest.
    let mut rng = XorShift(7);
    let samples: Vec<f64> = (0..10_000)
        .map(|i| {
            let jitter = 1.0 + 0.05 * rng.next_f64();
            if i % 10 == 0 {
                0.25 * jitter // miss: ~250 ms
            } else {
                2.5e-4 * jitter // hit: ~250 µs
            }
        })
        .collect();
    assert_quantiles_within_one_percent("bimodal", &samples);
}

#[test]
fn nonfinite_samples_do_not_poison_quantiles() {
    let mut hist = Histogram::new();
    for i in 1..=1000 {
        hist.observe(i as f64 * 1e-3);
    }
    hist.observe(f64::NAN);
    hist.observe(f64::INFINITY);
    hist.observe(f64::NEG_INFINITY);
    let snap = hist.snapshot();
    assert_eq!(snap.nonfinite, 3);
    assert_eq!(snap.count, 1000);
    let exact_p99 = 0.99;
    let rel = ((snap.p99() - exact_p99) / exact_p99).abs();
    assert!(rel <= 0.01, "p99 {} vs {exact_p99}", snap.p99());
}
