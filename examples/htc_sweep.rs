#![deny(unsafe_code)]
//! Real-time design-space exploration with the dual-HTC surrogate
//! (§V.B): train once, then sweep the whole heat-transfer-coefficient
//! square in milliseconds — the workflow the paper motivates for
//! early-stage cooling-solution selection.
//!
//! ```text
//! cargo run --release --example htc_sweep
//! ```

use deepoheat::experiments::{HtcExperiment, HtcExperimentConfig};
use deepoheat_telemetry::{self as telemetry, ConsoleSink};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Training progress (the train.loss gauge, emitted at every log
    // point) streams to stderr through the console sink.
    telemetry::Recorder::builder("htc_sweep")
        .sink(Box::new(ConsoleSink::with_prefixes(&["train.loss", "fdm."])))
        .install();

    println!("training dual-input DeepOHeat (supervised mode, 100 reference solves)…");
    let mut experiment = HtcExperiment::new(HtcExperimentConfig::default().supervised(100))?;
    experiment.run(2000, 400, |_| {})?;

    // Sweep a 6x6 grid of (h_top, h_bot) pairs with the surrogate.
    let values = [333.33, 466.67, 600.0, 733.33, 866.67, 1000.0];
    println!("\npeak chip temperature (K) predicted by the surrogate:");
    print!("{:>12}", "top\\bottom");
    for hb in values {
        print!("{hb:>10.0}");
    }
    println!();
    let t0 = std::time::Instant::now();
    let mut best = (f64::INFINITY, 0.0, 0.0);
    for ht in values {
        print!("{ht:>12.0}");
        for hb in values {
            let field = experiment.predict_field(ht, hb)?;
            let peak = field.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            if peak < best.0 {
                best = (peak, ht, hb);
            }
            print!("{peak:>10.3}");
        }
        println!();
    }
    let elapsed = t0.elapsed();
    println!(
        "\nswept {} design points in {:.1} ms ({:.2} ms each)",
        values.len() * values.len(),
        elapsed.as_secs_f64() * 1e3,
        elapsed.as_secs_f64() * 1e3 / (values.len() * values.len()) as f64
    );

    // Verify the surrogate's pick with the reference solver.
    let reference = experiment.reference_field(best.1, best.2)?;
    let ref_peak = reference.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "coolest design: h_top = {:.0}, h_bot = {:.0} -> surrogate peak {:.3} K, reference peak {:.3} K",
        best.1, best.2, best.0, ref_peak
    );
    telemetry::finish();
    Ok(())
}
