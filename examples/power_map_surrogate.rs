#![deny(unsafe_code)]
//! Train a physics-informed DeepOHeat surrogate for top-surface power
//! maps (§V.A) and use it on a custom floorplan.
//!
//! ```text
//! cargo run --release --example power_map_surrogate [-- iterations]
//! ```
//!
//! Training is fully self-supervised: no reference-solver data enters the
//! loop — the network minimises PDE and boundary residuals on power maps
//! sampled from a Gaussian random field. Afterwards we hand it a block
//! layout it has never seen and compare against the reference solver.

use deepoheat::experiments::{PowerMapExperiment, PowerMapExperimentConfig};
use deepoheat::metrics::FieldErrors;
use deepoheat::report::side_by_side;
use deepoheat_grf::TilePowerMap;
use deepoheat_linalg::Matrix;
use deepoheat_telemetry::{self as telemetry, ConsoleSink};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let iterations: usize = std::env::args().nth(1).map(|s| s.parse()).transpose()?.unwrap_or(800);

    telemetry::Recorder::builder("power_map_surrogate")
        .config("iterations", iterations)
        .sink(Box::new(ConsoleSink::with_prefixes(&["train.loss", "fdm."])))
        .install();

    println!("training physics-informed DeepOHeat for {iterations} iterations…");
    let mut experiment = PowerMapExperiment::new(PowerMapExperimentConfig::default())?;
    experiment.run(iterations, (iterations / 8).max(1), |_| {})?;

    // A custom two-block floorplan the model never saw.
    let mut layout = TilePowerMap::new(20, 20);
    layout.add_block(2, 2, 6, 10, 1.2)?; // a hot macro
    layout.add_block(12, 12, 5, 5, 0.8)?; // a cooler one
    let grid_map = layout.to_grid(21);

    let predicted = experiment.predict_field(&grid_map)?;
    let reference = experiment.reference_field(&grid_map)?;
    let errors = FieldErrors::compare(&predicted, &reference)?;
    println!(
        "\ncustom layout: MAPE {:.3}%  PAPE {:.3}%  peak |err| {:.3} K",
        errors.mape, errors.pape, errors.peak_abs
    );

    let grid = *experiment.chip().grid();
    let top = |field: &[f64]| {
        Matrix::from_fn(grid.nx(), grid.ny(), |i, j| field[grid.index(i, j, grid.nz() - 1)])
    };
    println!("{}", side_by_side("reference", &top(&reference), "surrogate", &top(&predicted)));
    telemetry::finish();
    Ok(())
}
