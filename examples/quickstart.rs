#![deny(unsafe_code)]
//! Quickstart: build the paper's §V.A chip, solve it with the reference
//! finite-volume solver, train the surrogate for a handful of steps, and
//! record the whole run through the telemetry pipeline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The run log streams to `target/quickstart.jsonl` (override with
//! `DEEPOHEAT_TELEMETRY=path.jsonl`) and the final run manifest — span
//! timings for assembly/solve/training, the CG residual history, and the
//! loss breakdown — lands next to it as `target/quickstart.manifest.json`.
//! See TELEMETRY.md for the schema.

use deepoheat::experiments::{PowerMapExperiment, PowerMapExperimentConfig};
use deepoheat::report::ascii_heatmap;
use deepoheat_chip::{Chip, UNIT_POWER_WATTS};
use deepoheat_fdm::{BoundaryCondition, Face, SolveOptions};
use deepoheat_grf::paper_test_suite;
use deepoheat_telemetry as telemetry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let jsonl_path = std::env::var("DEEPOHEAT_TELEMETRY")
        .unwrap_or_else(|_| "target/quickstart.jsonl".to_string());
    telemetry::Recorder::builder("quickstart")
        .config("grid", "21x21x11")
        .config("train_iterations", 20)
        .jsonl(&jsonl_path)?
        .install();

    // A 1mm x 1mm x 0.5mm chip on a 21x21x11 mesh, k = 0.1 W/mK,
    // adiabatic sides, convection-cooled bottom.
    let mut chip = Chip::single_cuboid(1e-3, 1e-3, 0.5e-3, 21, 21, 11, 0.1)?;
    chip.set_boundary(Face::ZMin, BoundaryCondition::Convection { htc: 500.0, ambient: 298.15 })?;

    // Heat it with the paper-style test power map p1 (a central block),
    // interpolated from 20x20 tiles to the 21x21 grid.
    let (name, tile_map) = paper_test_suite(20).remove(0);
    let grid_map = tile_map.to_grid(21);
    chip.set_top_power_map_units(&grid_map)?;
    println!(
        "power map {name}: {:.1} tile-units total ({:.2} mW)",
        tile_map.total_power(),
        tile_map.total_power() * UNIT_POWER_WATTS * 1e3
    );

    // Solve the steady heat equation with a CG convergence trace.
    let solution =
        chip.heat_problem()?.solve(SolveOptions { record_cg_trace: true, ..Default::default() })?;
    println!(
        "solved {} nodes in {} CG iterations (residual {:.1e})",
        solution.temperatures().len(),
        solution.iterations(),
        solution.relative_residual()
    );
    println!(
        "temperature range: {:.2} K .. {:.2} K (ambient 298.15 K)",
        solution.min_temperature(),
        solution.max_temperature()
    );
    if let Some(trace) = solution.cg_trace() {
        telemetry::event(
            "fdm.cg.trace",
            &[
                ("residuals", trace.residuals.as_slice().into()),
                ("final_residual", solution.relative_residual().into()),
                ("preconditioner_seconds", trace.preconditioner_seconds.into()),
                ("spmv_seconds", trace.spmv_seconds.into()),
            ],
        );
    }

    // A few physics-informed training steps on a scaled-down surrogate;
    // each step emits its per-term loss breakdown.
    let config = PowerMapExperimentConfig {
        nx: 9,
        ny: 9,
        nz: 5,
        branch_hidden: vec![24, 24],
        trunk_hidden: vec![24, 24],
        latent_dim: 16,
        functions_per_batch: 4,
        interior_points: Some(64),
        boundary_points: Some(32),
        ..Default::default()
    };
    let mut experiment = PowerMapExperiment::new(config)?;
    let records = experiment.run(20, 5, |_| {})?;
    println!(
        "\ntrained surrogate for 20 steps: loss {:.3e} -> {:.3e}",
        records.first().map(|r| r.loss).unwrap_or(f64::NAN),
        records.last().map(|r| r.loss).unwrap_or(f64::NAN)
    );

    // The top-surface field the paper plots in Fig. 3.
    let top = solution.face_temperatures(Face::ZMax);
    println!("\ntop-surface temperature field:");
    println!("{}", ascii_heatmap(&top));

    if let Some(manifest) = telemetry::finish() {
        println!(
            "telemetry: {} events -> {jsonl_path}, manifest with {} histograms alongside",
            manifest.metrics.counters.get("train.steps.count").copied().unwrap_or(0) + 1,
            manifest.metrics.histograms.len()
        );
    }
    Ok(())
}
