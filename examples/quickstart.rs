//! Quickstart: build the paper's §V.A chip, solve it with the reference
//! finite-volume solver, and print a temperature summary.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use deepoheat::report::ascii_heatmap;
use deepoheat_chip::{Chip, UNIT_POWER_WATTS};
use deepoheat_fdm::{BoundaryCondition, Face, SolveOptions};
use deepoheat_grf::paper_test_suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 1mm x 1mm x 0.5mm chip on a 21x21x11 mesh, k = 0.1 W/mK,
    // adiabatic sides, convection-cooled bottom.
    let mut chip = Chip::single_cuboid(1e-3, 1e-3, 0.5e-3, 21, 21, 11, 0.1)?;
    chip.set_boundary(Face::ZMin, BoundaryCondition::Convection { htc: 500.0, ambient: 298.15 })?;

    // Heat it with the paper-style test power map p1 (a central block),
    // interpolated from 20x20 tiles to the 21x21 grid.
    let (name, tile_map) = paper_test_suite(20).remove(0);
    let grid_map = tile_map.to_grid(21);
    chip.set_top_power_map_units(&grid_map)?;
    println!(
        "power map {name}: {:.1} tile-units total ({:.2} mW)",
        tile_map.total_power(),
        tile_map.total_power() * UNIT_POWER_WATTS * 1e3
    );

    // Solve the steady heat equation.
    let solution = chip.heat_problem()?.solve(SolveOptions::default())?;
    println!(
        "solved {} nodes in {} CG iterations (residual {:.1e})",
        solution.temperatures().len(),
        solution.iterations(),
        solution.relative_residual()
    );
    println!(
        "temperature range: {:.2} K .. {:.2} K (ambient 298.15 K)",
        solution.min_temperature(),
        solution.max_temperature()
    );

    // The top-surface field the paper plots in Fig. 3.
    let top = solution.face_temperatures(Face::ZMax);
    println!("\ntop-surface temperature field:");
    println!("{}", ascii_heatmap(&top));
    Ok(())
}
