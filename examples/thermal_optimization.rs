#![deny(unsafe_code)]
//! Thermal-aware floorplanning with a DeepOHeat surrogate — the
//! optimisation loop the paper's introduction motivates: "designers need
//! to re-run many simulations to optimize the design case".
//!
//! Four IP blocks of fixed size and power must be placed on the die. We
//! train the power-map surrogate once, then run a random-restart local
//! search that queries it thousands of times (which would be thousands of
//! solver runs without the surrogate), and finally verify the best
//! placement with the reference solver.
//!
//! ```text
//! cargo run --release --example thermal_optimization [-- candidates]
//! ```

use deepoheat::experiments::{PowerMapExperiment, PowerMapExperimentConfig};
use deepoheat::report::ascii_heatmap;
use deepoheat_grf::TilePowerMap;
use deepoheat_linalg::Matrix;
use deepoheat_telemetry::{self as telemetry, ConsoleSink};
use rand::{Rng, SeedableRng};

/// A candidate placement: the top-left tile of each of the four blocks.
#[derive(Debug, Clone, Copy)]
struct Placement {
    corners: [(usize, usize); 4],
}

const BLOCK: usize = 5; // each block covers 5x5 tiles
const TILES: usize = 20;

impl Placement {
    fn random<R: Rng>(rng: &mut R) -> Self {
        let mut corners = [(0, 0); 4];
        for c in &mut corners {
            *c = (rng.gen_range(0..=TILES - BLOCK), rng.gen_range(0..=TILES - BLOCK));
        }
        Placement { corners }
    }

    fn to_map(self) -> Result<TilePowerMap, Box<dyn std::error::Error>> {
        let mut map = TilePowerMap::new(TILES, TILES);
        for (r, c) in self.corners {
            map.add_block(r, c, BLOCK, BLOCK, 1.0)?;
        }
        Ok(map)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let candidates: usize = std::env::args().nth(1).map(|s| s.parse()).transpose()?.unwrap_or(400);

    telemetry::Recorder::builder("thermal_optimization")
        .config("candidates", candidates)
        .sink(Box::new(ConsoleSink::with_prefixes(&["train.loss", "fdm."])))
        .install();

    // Supervised training gives the sharpest surrogate for optimisation.
    println!("training surrogate (supervised mode)…");
    let mut experiment =
        PowerMapExperiment::new(PowerMapExperimentConfig::default().supervised(200))?;
    experiment.run(2500, 500, |_| {})?;

    let peak_of =
        |exp: &PowerMapExperiment, map: &Matrix| -> Result<f64, Box<dyn std::error::Error>> {
            let field = exp.predict_field(map)?;
            Ok(field.iter().copied().fold(f64::NEG_INFINITY, f64::max))
        };

    println!("\nsearching {candidates} random placements of four 5x5 blocks…");
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let t0 = std::time::Instant::now();
    let mut best: Option<(f64, Placement)> = None;
    let mut worst: Option<(f64, Placement)> = None;
    for _ in 0..candidates {
        let placement = Placement::random(&mut rng);
        let grid_map = placement.to_map()?.to_grid(21);
        let peak = peak_of(&experiment, &grid_map)?;
        if best.as_ref().is_none_or(|(b, _)| peak < *b) {
            best = Some((peak, placement));
        }
        if worst.as_ref().is_none_or(|(w, _)| peak > *w) {
            worst = Some((peak, placement));
        }
    }
    let (best_peak, best_placement) = best.expect("candidates > 0");
    let (worst_peak, _) = worst.expect("candidates > 0");
    println!(
        "evaluated {candidates} floorplans in {:.2} s ({:.2} ms per floorplan)",
        t0.elapsed().as_secs_f64(),
        t0.elapsed().as_secs_f64() * 1e3 / candidates as f64
    );
    println!("surrogate peak temperature: best {best_peak:.2} K, worst {worst_peak:.2} K");

    // Verify the winner against the reference solver.
    let best_map = best_placement.to_map()?;
    let grid_map = best_map.to_grid(21);
    let reference = experiment.reference_field(&grid_map)?;
    let ref_peak = reference.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "reference check of the winner: peak {ref_peak:.2} K (surrogate said {best_peak:.2} K)"
    );

    println!("\nwinning floorplan (tile powers):");
    println!("{}", ascii_heatmap(best_map.tiles()));
    telemetry::finish();
    Ok(())
}
