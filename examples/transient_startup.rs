#![deny(unsafe_code)]
//! Transient power-on of a chip: integrate the time-dependent heat
//! equation (the paper's Eq. (1) before its static simplification) from a
//! cold start and watch the hot spot approach the steady-state solution.
//!
//! ```text
//! cargo run --release --example transient_startup
//! ```

use deepoheat_chip::Chip;
use deepoheat_fdm::{BoundaryCondition, Face, SolveOptions, TransientOptions};
use deepoheat_grf::paper_test_suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The §V.A chip heated by test map p1.
    let mut chip = Chip::single_cuboid(1e-3, 1e-3, 0.5e-3, 21, 21, 11, 0.1)?;
    chip.set_boundary(Face::ZMin, BoundaryCondition::Convection { htc: 500.0, ambient: 298.15 })?;
    chip.set_top_power_map_units(&paper_test_suite(20).remove(0).1.to_grid(21))?;
    let problem = chip.heat_problem()?;

    let steady = problem.solve(SolveOptions::default())?;
    println!("steady-state peak temperature: {:.3} K", steady.max_temperature());

    // Power-on from ambient with silicon-like thermal mass.
    let options = TransientOptions::silicon(0.25, 60); // 15 s of simulated time
    let transient = problem.solve_transient(298.15, options)?;

    println!("\n   time (s)   hot-spot T (K)   % of steady rise");
    let steady_peak = steady.max_temperature();
    for (time, field) in transient.times().iter().zip(transient.fields()) {
        if !((time / 0.25).round() as usize).is_multiple_of(6) {
            continue; // print every 1.5 s
        }
        let peak = field.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let fraction = (peak - 298.15) / (steady_peak - 298.15) * 100.0;
        println!("{time:>10.2} {peak:>16.3} {fraction:>17.1}%");
    }

    let final_peak = transient.final_solution().max_temperature();
    println!(
        "\nafter {:.1} s the transient peak is within {:.3} K of steady state",
        transient.times().last().copied().unwrap_or(0.0),
        (steady_peak - final_peak).abs()
    );
    Ok(())
}
