#![deny(unsafe_code)]
//! Volumetric (3-D) power maps — the configuration family §III of the
//! paper defines and its conclusion names as future work.
//!
//! Trains a DeepOHeat surrogate whose branch consumes a full 3-D power
//! map (one value per mesh node) and evaluates it on unseen stacked-tier
//! layouts, the situation that motivates 3D-IC thermal analysis in the
//! first place.
//!
//! ```text
//! cargo run --release --example volumetric_power
//! ```

use deepoheat::experiments::{
    volumetric_test_suite, VolumetricExperiment, VolumetricExperimentConfig,
};
use deepoheat::report::side_by_side;
use deepoheat_linalg::Matrix;
use deepoheat_telemetry::{self as telemetry, ConsoleSink};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = VolumetricExperimentConfig::default();
    let (nx, ny, nz) = (config.nx, config.ny, config.nz);

    telemetry::Recorder::builder("volumetric_power")
        .config("sensors", format!("{nx}x{ny}x{nz}"))
        .sink(Box::new(ConsoleSink::with_prefixes(&["train.loss", "fdm."])))
        .install();

    println!("training volumetric-power DeepOHeat ({}x{}x{} sensors)…", nx, ny, nz);
    let mut experiment = VolumetricExperiment::new(config)?;
    experiment.run(2000, 400, |_| {})?;

    let grid = *experiment.chip().grid();
    for (name, map) in volumetric_test_suite(nx, ny, nz) {
        let errors = experiment.evaluate_units(&map)?;
        println!(
            "\n{name}: MAPE {:.3}%  PAPE {:.3}%  peak |err| {:.3} K",
            errors.mape, errors.pape, errors.peak_abs
        );

        // Show the mid-height slice of reference vs prediction.
        let reference = experiment.reference_field(&map)?;
        let predicted = experiment.predict_field(&map)?;
        let mid = nz / 2;
        let ref_slice = Matrix::from_fn(nx, ny, |i, j| reference[grid.index(i, j, mid)]);
        let pred_slice = Matrix::from_fn(nx, ny, |i, j| predicted[grid.index(i, j, mid)]);
        println!("{}", side_by_side("reference (mid slice)", &ref_slice, "surrogate", &pred_slice));
    }
    telemetry::finish();
    Ok(())
}
