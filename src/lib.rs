#![deny(unsafe_code)]
//! Workspace-level helper package.
//!
//! This package exists so the repository root can host cross-crate
//! integration tests (`tests/`) and runnable examples (`examples/`).
//! All library functionality lives in the `crates/` members; see the
//! [`deepoheat`] crate for the public entry point.

pub use deepoheat;
pub use deepoheat_autodiff as autodiff;
pub use deepoheat_chip as chip;
pub use deepoheat_fdm as fdm;
pub use deepoheat_grf as grf;
pub use deepoheat_linalg as linalg;
pub use deepoheat_nn as nn;
