//! Integration tests spanning `deepoheat-chip`, `deepoheat-grf` and
//! `deepoheat-fdm`: every paper test map must produce a physically sound
//! reference solution.

use deepoheat_chip::{Chip, UNIT_POWER_WATTS};
use deepoheat_fdm::{BoundaryCondition, Face, SolveOptions, StructuredGrid};
use deepoheat_grf::paper_test_suite;

fn paper_chip() -> Chip {
    let mut chip = Chip::single_cuboid(1e-3, 1e-3, 0.5e-3, 21, 21, 11, 0.1).expect("chip");
    chip.set_boundary(Face::ZMin, BoundaryCondition::Convection { htc: 500.0, ambient: 298.15 })
        .expect("bc");
    chip
}

#[test]
fn every_test_map_solves_and_is_physical() {
    for (name, map) in paper_test_suite(20) {
        let mut chip = paper_chip();
        chip.set_top_power_map_units(&map.to_grid(21)).expect("power map");
        let solution =
            chip.heat_problem().expect("problem").solve(SolveOptions::default()).expect("solve");

        // With only heating and convection cooling, the field must sit at
        // or above ambient and must be bounded (sanity on the hottest map).
        assert!(solution.min_temperature() >= 298.15 - 1e-9, "{name}: below ambient");
        assert!(solution.max_temperature() < 500.0, "{name}: implausibly hot");
        // The top surface must be the hottest layer (heat enters there).
        let top = solution.face_temperatures(Face::ZMax);
        let bottom = solution.face_temperatures(Face::ZMin);
        assert!(top.max() > bottom.max(), "{name}: top not hottest");
    }
}

#[test]
fn energy_balance_holds_for_block_maps() {
    // Heat injected through the top flux must leave through the bottom
    // convection film: Σ h A (T_bottom - T_amb) = Σ q A.
    let (_, map) = paper_test_suite(20).remove(4); // p5, three blocks
    let mut chip = paper_chip();
    let grid_map = map.to_grid(21);
    chip.set_top_power_map_units(&grid_map).expect("power map");
    let solution = chip
        .heat_problem()
        .expect("problem")
        .solve(SolveOptions { tolerance: 1e-12, ..Default::default() })
        .expect("solve");

    let g = *chip.grid();
    let flux = chip.units_to_flux(&grid_map);
    let mut heat_in = 0.0;
    let mut heat_out = 0.0;
    for i in 0..21 {
        for j in 0..21 {
            let area = StructuredGrid::face_patch_area(i, 21, g.dx(), j, 21, g.dy());
            heat_in += flux[(i, j)] * area;
            heat_out += 500.0 * area * (solution.at(i, j, 0) - 298.15);
        }
    }
    assert!(
        (heat_in - heat_out).abs() < 1e-8 * heat_in,
        "energy imbalance: in {heat_in}, out {heat_out}"
    );
}

#[test]
fn hottest_point_sits_under_the_strongest_source() {
    // p10 has one block at 3.0 units among 1.0-unit blocks; the top-surface
    // peak must lie inside that block's footprint (rows 13-14, cols 16-17
    // in tile coordinates -> roughly grid rows 13-16, cols 16-19).
    let (_, map) = paper_test_suite(20).remove(9);
    let mut chip = paper_chip();
    chip.set_top_power_map_units(&map.to_grid(21)).expect("power map");
    let solution =
        chip.heat_problem().expect("problem").solve(SolveOptions::default()).expect("solve");
    let top = solution.face_temperatures(Face::ZMax);
    let mut peak = (0usize, 0usize);
    for i in 0..21 {
        for j in 0..21 {
            if top[(i, j)] > top[peak] {
                peak = (i, j);
            }
        }
    }
    assert!((12..=17).contains(&peak.0) && (15..=20).contains(&peak.1), "peak at {peak:?}");
}

#[test]
fn unit_power_conversion_matches_paper_units() {
    let chip = paper_chip();
    // One unit on the 21x21 grid of a 1mm x 1mm chip: 0.00625 mW over a
    // (0.05mm)² cell = 2500 W/m².
    assert!((chip.unit_flux_density() - UNIT_POWER_WATTS / 2.5e-9).abs() < 1e-9);
    assert!((chip.unit_flux_density() - 2500.0).abs() < 1e-9);
}

#[test]
fn layered_chip_round_trips_through_solver() {
    use deepoheat_chip::Layer;
    let layers = vec![
        Layer::new(0.25e-3, 0.1).expect("layer"),
        Layer::with_total_power(0.05e-3, 0.1, 0.000625, 1e-6).expect("layer"),
        Layer::new(0.25e-3, 0.1).expect("layer"),
    ];
    let mut chip = Chip::new(1e-3, 1e-3, 9, 9, 12, layers).expect("chip");
    chip.set_boundary(Face::ZMin, BoundaryCondition::Convection { htc: 500.0, ambient: 298.15 })
        .expect("bc");
    chip.set_boundary(Face::ZMax, BoundaryCondition::Convection { htc: 500.0, ambient: 298.15 })
        .expect("bc");
    let solution =
        chip.heat_problem().expect("problem").solve(SolveOptions::default()).expect("solve");
    // 0.625 mW into two parallel 500 W/m²K films over 1 mm²:
    // mean surface rise ≈ 0.625 K; peak should be in the powered layer.
    assert!(solution.max_temperature() > 298.7);
    assert!(solution.max_temperature() < 300.2);
    let hottest_k = (0..12)
        .max_by(|&a, &b| solution.at(4, 4, a).total_cmp(&solution.at(4, 4, b)))
        .expect("nonempty");
    assert!((5..=6).contains(&hottest_k), "hottest layer {hottest_k}");
}
