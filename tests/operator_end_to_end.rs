//! End-to-end integration tests of the operator-learning stack: both
//! experiments, both training modes, exercised at miniature scale.

use deepoheat::experiments::{
    HtcExperiment, HtcExperimentConfig, PowerMapExperiment, PowerMapExperimentConfig,
};
use deepoheat::metrics::relative_l2;
use deepoheat_grf::paper_test_suite;
use deepoheat_linalg::Matrix;

fn tiny_power_map_config() -> PowerMapExperimentConfig {
    PowerMapExperimentConfig {
        nx: 11,
        ny: 11,
        nz: 6,
        branch_hidden: vec![32, 32],
        trunk_hidden: vec![32, 32],
        latent_dim: 24,
        functions_per_batch: 4,
        interior_points: Some(128),
        boundary_points: Some(48),
        seed: 11,
        ..Default::default()
    }
}

#[test]
fn physics_informed_training_beats_the_trivial_predictor() {
    // After a short physics-informed run, the prediction of the
    // temperature *rise* must capture a meaningful fraction of the truth
    // (the trivial always-ambient predictor scores exactly 1.0).
    let mut exp = PowerMapExperiment::new(tiny_power_map_config()).expect("experiment");
    for _ in 0..300 {
        exp.train_step().expect("step");
    }
    let map = Matrix::filled(11, 11, 1.0);
    let predicted = exp.predict_field(&map).expect("prediction");
    let reference = exp.reference_field(&map).expect("reference");
    let pred_rise: Vec<f64> = predicted.iter().map(|t| t - 298.15).collect();
    let ref_rise: Vec<f64> = reference.iter().map(|t| t - 298.15).collect();
    let rel = relative_l2(&pred_rise, &ref_rise).expect("metric");
    assert!(rel < 0.5, "rise relative error {rel} (trivial predictor = 1.0)");
}

#[test]
fn supervised_training_reaches_tight_accuracy() {
    let config = tiny_power_map_config().supervised(24);
    let mut exp = PowerMapExperiment::new(config).expect("experiment");
    for _ in 0..400 {
        exp.train_step().expect("step");
    }
    // Accuracy on an in-distribution-ish block map.
    let mut map = Matrix::zeros(11, 11);
    for i in 3..8 {
        for j in 3..8 {
            map[(i, j)] = 1.0;
        }
    }
    let errors = exp.evaluate_units(&map).expect("evaluation");
    assert!(errors.mape < 0.5, "MAPE {}%", errors.mape);
    assert!(errors.pape < 3.0, "PAPE {}%", errors.pape);
}

#[test]
fn htc_supervised_pipeline_matches_reference_closely() {
    let config = HtcExperimentConfig {
        nx: 9,
        nz: 12,
        branch_hidden: vec![12, 12],
        trunk_hidden: vec![32, 32],
        latent_dim: 24,
        functions_per_batch: 6,
        volume_points: 200,
        seed: 5,
        ..Default::default()
    }
    .supervised(20);
    let mut exp = HtcExperiment::new(config).expect("experiment");
    for _ in 0..500 {
        exp.train_step().expect("step");
    }
    for (ht, hb) in [(1000.0, 333.33), (500.0, 500.0)] {
        let errors = exp.evaluate(ht, hb).expect("evaluation");
        assert!(errors.mape < 0.2, "({ht},{hb}) MAPE {}%", errors.mape);
    }
}

#[test]
fn evaluation_against_the_paper_suite_is_wired_up() {
    // Construction-level check that all ten paper maps flow through the
    // full pipeline (encode -> predict -> reference solve -> metrics).
    let exp = PowerMapExperiment::new(PowerMapExperimentConfig {
        branch_hidden: vec![16],
        trunk_hidden: vec![16],
        latent_dim: 8,
        ..Default::default()
    })
    .expect("experiment");
    for (name, map) in paper_test_suite(20) {
        let errors = exp.evaluate_units(&map.to_grid(21)).expect("evaluation");
        assert!(errors.mape.is_finite(), "{name} produced a non-finite MAPE");
        assert!(errors.pape >= errors.mape, "{name}: PAPE below MAPE");
    }
}

#[test]
fn training_is_reproducible_for_a_fixed_seed() {
    let run = || {
        let mut exp = PowerMapExperiment::new(tiny_power_map_config()).expect("experiment");
        let mut last = 0.0;
        for _ in 0..10 {
            last = exp.train_step().expect("step");
        }
        last
    };
    assert_eq!(run(), run());
}
