//! Cross-crate consistency tests between the two prediction paths (graph
//! vs inference) and between the surrogate's physics and the reference
//! solver's discretisation.

use deepoheat::physics::{self, HtcInput, PhysicsScales};
use deepoheat::{DeepOHeat, DeepOHeatConfig};
use deepoheat_autodiff::Graph;
use deepoheat_fdm::{BoundaryCondition, Face, FluxMap, HeatProblem, SolveOptions, StructuredGrid};
use deepoheat_linalg::Matrix;
use deepoheat_nn::Jet3;
use rand::SeedableRng;

#[test]
fn graph_and_inference_paths_agree_with_fourier() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let cfg = DeepOHeatConfig::single_branch(9, &[12, 12], &[12, 12], 8)
        .with_fourier(6, std::f64::consts::TAU)
        .with_output_transform(298.15, 10.0);
    let model = DeepOHeat::new(&cfg, &mut rng).expect("model");
    let u = Matrix::from_fn(3, 9, |i, j| 0.1 * (i * 9 + j) as f64 - 0.4);
    let y = Matrix::from_fn(17, 3, |i, j| ((i * 3 + j) % 10) as f64 / 10.0);

    let fast = model.predict_theta(&[&u], &y).expect("inference");
    let mut g = Graph::new();
    let bound = model.bind(&mut g);
    let b = bound.branch_product(&mut g, &[u]).expect("branch");
    let phi = bound.trunk_features(&mut g, &y).expect("trunk");
    let theta = bound.combine(&mut g, b, phi).expect("combine");
    for (a, b) in g.value(theta).iter().zip(fast.iter()) {
        assert!((a - b).abs() < 1e-12);
    }
}

/// The exact 1-D slab field, injected as hand-built jet channels, must
/// zero the surrogate's residuals with the *same constants* that drive
/// the reference solver — this ties the two discretisations together.
#[test]
fn surrogate_residuals_agree_with_solver_on_the_slab_problem() {
    let k = 0.1;
    let h = 500.0;
    let q = 2500.0;
    let t_amb = 298.15;
    let delta_t = 10.0;
    let extents = [1e-3, 1e-3, 0.5e-3];

    // Reference solve.
    let grid = StructuredGrid::new(9, 9, 7, extents[0], extents[1], extents[2]).expect("grid");
    let mut problem = HeatProblem::new(grid, k);
    problem
        .set_boundary(Face::ZMax, BoundaryCondition::HeatFlux { flux: FluxMap::Uniform(q) })
        .expect("bc");
    problem
        .set_boundary(Face::ZMin, BoundaryCondition::Convection { htc: h, ambient: t_amb })
        .expect("bc");
    let solution =
        problem.solve(SolveOptions { tolerance: 1e-12, ..Default::default() }).expect("solve");

    // Build θ jets of the solver's own field (linear in z, so the exact
    // derivative channels are constants).
    let scales = PhysicsScales::new(k, delta_t, extents).expect("scales");
    let slope = q * extents[2] / (k * delta_t);
    let theta_bottom = (solution.at(4, 4, 0) - t_amb) / delta_t;

    let n = 5;
    let mut g = Graph::new();
    let mk = |g: &mut Graph, v: f64| g.leaf(Matrix::filled(1, n, v), false);
    let zeros = mk(&mut g, 0.0);
    let bottom_jet = Jet3 {
        value: mk(&mut g, theta_bottom),
        d1: [zeros, zeros, mk(&mut g, slope)],
        d2: [zeros; 3],
    };
    let r = physics::convection_residual(
        &mut g,
        &bottom_jet,
        Face::ZMin,
        &scales,
        &HtcInput::Uniform(h),
    )
    .expect("residual");
    for v in g.value(r).iter() {
        assert!(v.abs() < 1e-9, "convection residual {v} against solver field");
    }

    let theta_top = (solution.at(4, 4, 6) - t_amb) / delta_t;
    let top_jet = Jet3 {
        value: mk(&mut g, theta_top),
        d1: [zeros, zeros, mk(&mut g, slope)],
        d2: [zeros; 3],
    };
    let flux_target = Matrix::filled(1, n, q);
    let r = physics::flux_residual(&mut g, &top_jet, Face::ZMax, &scales, &flux_target)
        .expect("residual");
    for v in g.value(r).iter() {
        assert!(v.abs() < 1e-9, "flux residual {v} against solver field");
    }
}

#[test]
fn prediction_scales_linearly_with_branch_scaling_of_a_linear_branch() {
    // With a freshly initialised model this is not exactly linear, but the
    // combine step itself must be: doubling the branch features doubles θ.
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let cfg = DeepOHeatConfig::single_branch(4, &[8], &[8], 6);
    let model = DeepOHeat::new(&cfg, &mut rng).expect("model");
    let y = Matrix::from_fn(6, 3, |i, j| (i + j) as f64 * 0.1);
    let mut g = Graph::new();
    let bound = model.bind(&mut g);
    let u = Matrix::from_fn(2, 4, |i, j| (i + j) as f64 * 0.2);
    let b = bound.branch_product(&mut g, &[u]).expect("branch");
    let b2 = g.scale(b, 2.0).expect("scale");
    let phi = bound.trunk_features(&mut g, &y).expect("trunk");
    let t1 = bound.combine(&mut g, b, phi).expect("combine");
    let t2 = bound.combine(&mut g, b2, phi).expect("combine");
    for (a, b) in g.value(t1).iter().zip(g.value(t2).iter()) {
        assert!((2.0 * a - b).abs() < 1e-12);
    }
}
