//! Offline vendored stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness.
//!
//! The build environment has no crates.io access, so this shim provides the
//! subset the workspace's benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] with `sample_size` / `bench_function` /
//! `bench_with_input` / `finish`, [`BenchmarkId::new`], [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Instead of criterion's statistical analysis it times `sample_size`
//! batches per benchmark and prints min / median / mean wall times — enough
//! to compare runs by eye or by grepping the output. Respects
//! `CRITERION_SAMPLE_SIZE` to override sampling globally (handy in CI
//! smoke runs).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising a value away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark harness entry point.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let default_sample_size =
            std::env::var("CRITERION_SAMPLE_SIZE").ok().and_then(|v| v.parse().ok()).unwrap_or(10);
        Criterion { default_sample_size }
    }
}

impl Criterion {
    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.default_sample_size, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.default_sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(&full, self.sample_size, &mut f);
        self
    }

    /// Runs a parameterised benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher, input);
        bencher.report(&full);
        self
    }

    /// Ends the group (upstream finalises reports here; the shim needs no
    /// cleanup, the method exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// A benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a function name and a parameter display value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, recording `sample_size` samples (after one
    /// untimed warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        self.samples.sort();
        let min = self.samples[0];
        let median = self.samples[self.samples.len() / 2];
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "{name:<50} min {:>12} median {:>12} mean {:>12} ({} samples)",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
            self.samples.len(),
        );
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher { samples: Vec::new(), sample_size };
    f(&mut bencher);
    bencher.report(name);
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for one or more benchmark groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut runs = 0;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        // 1 warm-up + sample_size timed runs.
        assert!(runs > 1);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut seen = 0usize;
        group.bench_with_input(BenchmarkId::new("param", 42), &7usize, |b, &input| {
            b.iter(|| seen += input)
        });
        group.finish();
        assert_eq!(seen % 7, 0);
        assert!(seen >= 7 * 3);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }
}
