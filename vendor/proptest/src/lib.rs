//! Offline vendored stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! The build environment has no crates.io access, so this shim provides the
//! subset the workspace's property tests use: the [`Strategy`] trait with
//! [`Strategy::prop_map`], range strategies, [`collection::vec`], the
//! [`proptest!`] macro, [`ProptestConfig::with_cases`], and the
//! `prop_assert*` macros.
//!
//! Differences from upstream: cases are generated from a fixed seed (fully
//! deterministic runs) and failing cases are **not shrunk** — the failing
//! input is reported via the standard panic message instead.

use rand::rngs::StdRng;
use rand::Rng;

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values for property tests.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`, mirroring upstream `prop_map`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one fixed value, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f64, usize, u64, u32, u16, u8);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// A strategy for `Vec`s of `len` elements drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// Generates vectors with exactly `len` elements from `element`.
    ///
    /// Upstream accepts any size range here; the workspace only uses fixed
    /// lengths, so that is all the shim supports.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

#[doc(hidden)]
pub fn __new_rng(seed: u64) -> StdRng {
    <StdRng as rand::SeedableRng>::seed_from_u64(seed)
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

/// Asserts a condition inside a property, mirroring `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property, mirroring `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property, mirroring `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` that checks the body against `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;) => {};
    (
        cfg = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            // Deterministic seed derived from the test name so each
            // property explores its own stream.
            let seed = {
                let name = stringify!($name);
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for b in name.bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x0000_0100_0000_01B3);
                }
                h
            };
            let mut rng = $crate::__new_rng(seed);
            $(let $arg = $strat;)*
            for __case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&$arg, &mut rng);)*
                $body
            }
        }
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (f64, f64)> {
        crate::collection::vec(-1.0f64..1.0, 2).prop_map(|v| (v[0], v[1]))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 0.0f64..10.0, n in 1usize..5) {
            prop_assert!((0.0..10.0).contains(&x));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn mapped_strategies_compose(p in pair()) {
            prop_assert!(p.0.abs() <= 1.0 && p.1.abs() <= 1.0);
        }

        #[test]
        fn vec_strategy_has_exact_len(v in crate::collection::vec(0u32..9, 7)) {
            prop_assert_eq!(v.len(), 7);
        }
    }

    proptest! {
        #[test]
        fn default_config_also_works(x in -5.0f64..5.0) {
            prop_assert_ne!(x, 100.0);
        }
    }
}
