//! Offline vendored stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate (version 0.8 API subset).
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the narrow slice of `rand` it actually uses:
//!
//! * [`Rng::gen_range`] over `Range`/`RangeInclusive` of `f64` and the
//!   unsigned integer types,
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`] — here a xoshiro256++ generator seeded via SplitMix64.
//!
//! Streams are deterministic for a given seed (which is all the test-suite
//! relies on) but are **not** bit-compatible with upstream `rand`'s
//! `StdRng`; regenerate any golden data if this shim is ever swapped for
//! the real crate.

use std::ops::{Range, RangeInclusive};

/// Core random-number generation: a source of uniformly distributed bits.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty (`low >= high` for half-open ranges).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to sample a single uniform value from itself.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform in `[0, 1]` (closed) with 53 bits of precision.
fn unit_f64_inclusive<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range {:?}", self);
        let v = self.start + unit_f64(rng) * (self.end - self.start);
        // Guard against rounding up to `end` on huge spans.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
        lo + unit_f64_inclusive(rng) * (hi - lo)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range {:?}", self);
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

/// A generator that can be constructed from a seed, mirroring
/// `rand::SeedableRng` (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it with
    /// SplitMix64 so similar seeds give unrelated streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    ///
    /// Deterministic for a given seed; not bit-compatible with upstream
    /// `rand::rngs::StdRng` (see the crate docs).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard seeding recipe for
            // xoshiro-family generators.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl StdRng {
        /// Returns the raw xoshiro256++ state.
        ///
        /// This is an extension over the upstream `rand` API (which exposes
        /// state only through serde) so callers can checkpoint a generator
        /// and later resume the exact stream with [`StdRng::from_state`].
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by [`StdRng::state`].
        ///
        /// The all-zero state is a fixed point of xoshiro256++ (the stream
        /// would be constant zero), so it is replaced by the expansion of
        /// seed 0 — the same stream `seed_from_u64(0)` produces.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return <StdRng as SeedableRng>::seed_from_u64(0);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0f64..1.0), b.gen_range(0.0f64..1.0));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..8).map(|_| a.gen_range(0.0f64..1.0)).collect();
        let ys: Vec<f64> = (0..8).map(|_| b.gen_range(0.0f64..1.0)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-2.5f64..3.5);
            assert!((-2.5..3.5).contains(&v));
            let w = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn integer_ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 5 values should appear: {seen:?}");
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..=4);
            assert!((3..=4).contains(&v));
        }
    }

    #[test]
    fn works_through_mut_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0f64..1.0)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let v = draw(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            a.gen_range(0.0f64..1.0);
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0f64..1.0), b.gen_range(0.0f64..1.0));
        }
    }

    #[test]
    fn zero_state_is_remapped() {
        let mut z = StdRng::from_state([0; 4]);
        let mut s0 = StdRng::seed_from_u64(0);
        for _ in 0..8 {
            assert_eq!(z.gen_range(0u64..=u64::MAX), s0.gen_range(0u64..=u64::MAX));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
