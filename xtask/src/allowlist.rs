//! The lint allowlist: per-file, per-lint exceptions, each carrying a
//! mandatory justification string.
//!
//! Format (`xtask/lint-allow.txt`), one entry per line:
//!
//! ```text
//! # comment
//! <lint-id> <path> :: <justification>
//! ```
//!
//! Entries with an empty justification are rejected, and entries that no
//! longer suppress anything fail the lint pass as `allowlist-stale`, so
//! the file can only describe the present, not accumulate history.

use crate::lints::{lint, Diagnostic};

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Lint identifier the entry suppresses.
    pub lint: String,
    /// Workspace-relative path it applies to.
    pub path: String,
    /// Why the exception is sound — shown in `--unsafe-report` and audits.
    pub justification: String,
    /// 1-based line in the allowlist file (for stale-entry reporting).
    pub source_line: usize,
}

/// Parses the allowlist text.
///
/// # Errors
///
/// Returns a message naming the offending line for malformed entries or
/// missing justifications.
pub fn parse(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let source_line = idx + 1;
        let (head, justification) = line
            .split_once(" :: ")
            .ok_or_else(|| format!("allowlist line {source_line}: missing ` :: justification`"))?;
        let justification = justification.trim();
        if justification.is_empty() {
            return Err(format!("allowlist line {source_line}: empty justification"));
        }
        let (lint_id, path) = head
            .trim()
            .split_once(char::is_whitespace)
            .ok_or_else(|| format!("allowlist line {source_line}: expected `<lint> <path>`"))?;
        let lint_id = lint_id.trim();
        if !lint::ALL.contains(&lint_id) {
            return Err(format!(
                "allowlist line {source_line}: unknown lint id `{lint_id}` (known: {})",
                lint::ALL.join(", ")
            ));
        }
        entries.push(AllowEntry {
            lint: lint_id.to_string(),
            path: path.trim().to_string(),
            justification: justification.to_string(),
            source_line,
        });
    }
    Ok(entries)
}

/// Splits diagnostics into (kept, suppressed) and appends a
/// [`lint::ALLOWLIST_STALE`] finding for every entry that matched nothing.
pub fn apply(
    diagnostics: Vec<Diagnostic>,
    entries: &[AllowEntry],
) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
    let mut used = vec![false; entries.len()];
    let mut kept = Vec::new();
    let mut suppressed = Vec::new();
    for diag in diagnostics {
        let hit = entries
            .iter()
            .position(|entry| entry.lint == diag.lint && entry.path == diag.path)
            .inspect(|&i| used[i] = true);
        if hit.is_some() {
            suppressed.push(diag);
        } else {
            kept.push(diag);
        }
    }
    for (entry, used) in entries.iter().zip(&used) {
        if !used {
            kept.push(Diagnostic {
                lint: lint::ALLOWLIST_STALE,
                path: entry.path.clone(),
                line: 0,
                message: format!(
                    "allowlist entry `{} {}` (lint-allow.txt:{}) suppresses nothing — remove it",
                    entry.lint, entry.path, entry.source_line
                ),
            });
        }
    }
    (kept, suppressed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(lint: &'static str, path: &str) -> Diagnostic {
        Diagnostic { lint, path: path.into(), line: 3, message: "m".into() }
    }

    #[test]
    fn parses_entries_and_rejects_missing_justification() {
        let entries =
            parse("# header\n\ndeterminism-time crates/linalg/src/cg.rs :: trace timing only\n")
                .unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].lint, "determinism-time");
        assert_eq!(entries[0].path, "crates/linalg/src/cg.rs");
        assert_eq!(entries[0].justification, "trace timing only");

        assert!(parse("determinism-time crates/x.rs\n").is_err());
        assert!(parse("determinism-time crates/x.rs :: \n").is_err());
        assert!(parse("lonely-token :: why\n").is_err());
    }

    #[test]
    fn unknown_lint_ids_are_rejected_at_parse_time() {
        let err = parse("determinism-tmie crates/x.rs :: typo\n").unwrap_err();
        assert!(err.contains("unknown lint id"), "{err}");
        // Every new-family id is a valid allowlist key.
        for id in ["lock-order", "float-eq", "float-cmp-unwrap", "float-as-lossy"] {
            let text = format!("{id} crates/x.rs :: argued exception\n");
            assert_eq!(parse(&text).unwrap().len(), 1, "{id}");
        }
    }

    #[test]
    fn suppresses_matching_diagnostics_and_flags_stale_entries() {
        let entries =
            parse("determinism-time a.rs :: fine\ndeterminism-spawn never.rs :: unused entry\n")
                .unwrap();
        let diags = vec![diag("determinism-time", "a.rs"), diag("determinism-time", "b.rs")];
        let (kept, suppressed) = apply(diags, &entries);
        assert_eq!(suppressed.len(), 1);
        assert_eq!(suppressed[0].path, "a.rs");
        // b.rs survives, and the unused never.rs entry becomes a finding.
        assert_eq!(kept.len(), 2);
        assert!(kept.iter().any(|d| d.path == "b.rs"));
        assert!(kept.iter().any(|d| d.lint == lint::ALLOWLIST_STALE));
    }
}
