//! The panic-freedom ratchet: a checked-in per-file count of panic-capable
//! call sites (`xtask/panic-baseline.txt`) that may only go down.
//!
//! Format, one entry per line, sorted by path:
//!
//! ```text
//! <count> <path>
//! ```
//!
//! A file whose current count exceeds its baseline fails the lint pass
//! (new panic sites); a file below its baseline fails too — as
//! `baseline-stale` — so improvements are locked in immediately via
//! `cargo xtask lint --update-baseline` and cannot silently regress back.

use std::collections::BTreeMap;

use crate::lints::{lint, Diagnostic, PanicSite};

/// Parses baseline text into path → allowed count.
///
/// # Errors
///
/// Returns a message naming the malformed line.
pub fn parse(text: &str) -> Result<BTreeMap<String, usize>, String> {
    let mut map = BTreeMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (count, path) = line
            .split_once(char::is_whitespace)
            .ok_or_else(|| format!("baseline line {}: expected `<count> <path>`", idx + 1))?;
        let count: usize =
            count.parse().map_err(|_| format!("baseline line {}: bad count {count:?}", idx + 1))?;
        map.insert(path.trim().to_string(), count);
    }
    Ok(map)
}

/// Renders counts back into the checked-in format (sorted, zero-count
/// files omitted).
pub fn render(counts: &BTreeMap<String, usize>) -> String {
    let mut out = String::from(
        "# Panic-freedom ratchet: allowed panic-capable call sites per file.\n\
         # Counts may only decrease. Regenerate with `cargo xtask lint --update-baseline`\n\
         # after burning sites down; adding a site fails `cargo xtask lint`.\n",
    );
    for (path, count) in counts {
        if *count > 0 {
            out.push_str(&format!("{count} {path}\n"));
        }
    }
    out
}

/// Compares current per-file panic sites against the baseline, producing
/// ratchet diagnostics.
pub fn check(
    current: &BTreeMap<String, Vec<PanicSite>>,
    baseline: &BTreeMap<String, usize>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (path, sites) in current {
        let allowed = baseline.get(path).copied().unwrap_or(0);
        let found = sites.len();
        if found > allowed {
            let detail: Vec<String> =
                sites.iter().map(|s| format!("{}:{} {}", path, s.line, s.what)).collect();
            out.push(Diagnostic {
                lint: lint::PANIC_FREEDOM,
                path: path.clone(),
                line: sites.first().map_or(0, |s| s.line),
                message: format!(
                    "{found} panic-capable site(s), baseline allows {allowed}: convert the new \
                     ones to typed errors or `expect(\"invariant: …\")` — sites: {}",
                    detail.join(", ")
                ),
            });
        } else if found < allowed {
            out.push(Diagnostic {
                lint: lint::BASELINE_STALE,
                path: path.clone(),
                line: 0,
                message: format!(
                    "{found} panic-capable site(s) but baseline allows {allowed}: run \
                     `cargo xtask lint --update-baseline` to lock in the improvement"
                ),
            });
        }
    }
    // Baseline entries for files that no longer have any sites (deleted or
    // fully burned down) must be ratcheted away too.
    for (path, &allowed) in baseline {
        if allowed > 0 && !current.contains_key(path) {
            out.push(Diagnostic {
                lint: lint::BASELINE_STALE,
                path: path.clone(),
                line: 0,
                message: format!(
                    "baseline allows {allowed} site(s) but the file has none (or is gone): run \
                     `cargo xtask lint --update-baseline`"
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sites(n: usize) -> Vec<PanicSite> {
        (0..n)
            .map(|i| PanicSite { line: i + 1, offset: i * 10, what: ".unwrap()".into() })
            .collect()
    }

    #[test]
    fn round_trips_through_render_and_parse() {
        let mut counts = BTreeMap::new();
        counts.insert("b.rs".to_string(), 2);
        counts.insert("a.rs".to_string(), 1);
        counts.insert("zero.rs".to_string(), 0);
        let text = render(&counts);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed.get("a.rs"), Some(&1));
        assert_eq!(parsed.get("b.rs"), Some(&2));
        assert!(!parsed.contains_key("zero.rs"));
        // Sorted output: a.rs before b.rs.
        assert!(text.find("a.rs").unwrap() < text.find("b.rs").unwrap());
    }

    #[test]
    fn regression_above_baseline_fails() {
        let baseline = parse("1 a.rs\n").unwrap();
        let mut current = BTreeMap::new();
        current.insert("a.rs".to_string(), sites(2));
        let diags = check(&current, &baseline);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].lint, lint::PANIC_FREEDOM);
        assert!(diags[0].message.contains("baseline allows 1"), "{}", diags[0].message);
    }

    #[test]
    fn new_file_with_sites_fails_with_zero_default() {
        let baseline = parse("").unwrap();
        let mut current = BTreeMap::new();
        current.insert("new.rs".to_string(), sites(1));
        let diags = check(&current, &baseline);
        assert_eq!(diags[0].lint, lint::PANIC_FREEDOM);
    }

    #[test]
    fn improvements_must_be_locked_in() {
        let baseline = parse("3 a.rs\n2 gone.rs\n").unwrap();
        let mut current = BTreeMap::new();
        current.insert("a.rs".to_string(), sites(1));
        let diags = check(&current, &baseline);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.lint == lint::BASELINE_STALE));
    }

    #[test]
    fn exact_match_is_silent() {
        let baseline = parse("2 a.rs\n").unwrap();
        let mut current = BTreeMap::new();
        current.insert("a.rs".to_string(), sites(2));
        assert!(check(&current, &baseline).is_empty());
    }
}
