//! `cargo xtask benchcheck` — the CI perf-regression gate.
//!
//! Reads the committed baseline at `xtask/bench-baseline.json`, loads the
//! bench manifests it references (fresh `BENCH_*.json` files produced by
//! the bench binaries), and compares each tracked gauge against its
//! recorded value within a per-check tolerance band. Prints a delta
//! table; any gauge outside its band (or any missing manifest/gauge)
//! fails the run.
//!
//! Only machine-robust gauges belong in the baseline: ratios such as
//! batched-vs-naive speedups and deterministic quantities such as cache
//! hit rates. Raw wall-clock seconds and queries/sec vary across runners
//! and would make the gate flaky; they are still present in the uploaded
//! manifests for human inspection.
//!
//! `--update-baseline` rewrites the recorded values (keeping directions
//! and tolerances) from the current manifests.

use std::fmt::Write as _;
use std::path::Path;

use crate::json::{self, Json};

/// Relative path of the committed bench baseline.
pub const BENCH_BASELINE_PATH: &str = "xtask/bench-baseline.json";

/// Relative path of the committed accuracy baseline (the `accuracycheck`
/// gate over `BENCH_accuracy.json`).
pub const ACCURACY_BASELINE_PATH: &str = "xtask/accuracy-baseline.json";

/// Header comment re-emitted into `xtask/bench-baseline.json` on
/// `--update-baseline`.
pub const BENCH_BASELINE_COMMENT: &str = "Perf-regression gate reference values. Regenerate with: cargo run --release -p deepoheat-bench --bin perf_baseline -- --quick && cargo run --release -p deepoheat-bench --bin serve_throughput -- --quick && cargo xtask benchcheck --update-baseline. Only machine-robust gauges (ratios, deterministic rates) belong here.";

/// Header comment re-emitted into `xtask/accuracy-baseline.json` on
/// `--update-baseline`.
pub const ACCURACY_BASELINE_COMMENT: &str = "Accuracy-gate reference values for the surrogate-vs-reference sweep. Regenerate with: cargo run --release -p deepoheat-bench --bin accuracy_sweep -- --quick && cargo xtask accuracycheck --update-baseline. The sweep is seeded and bit-identical across pool widths, so these bands only need to absorb cross-platform libm drift and wall-clock noise on the speedup ratio.";

/// Which direction of drift counts as a regression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// The gauge should stay high (speedups, hit rates): regression when
    /// `value < baseline · (1 − tolerance)`.
    HigherIsBetter,
    /// The gauge should stay low (overheads): regression when
    /// `value > baseline · (1 + tolerance)`.
    LowerIsBetter,
}

impl Direction {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "higher" => Ok(Direction::HigherIsBetter),
            "lower" => Ok(Direction::LowerIsBetter),
            other => Err(format!("unknown direction `{other}` (expected `higher` or `lower`)")),
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            Direction::HigherIsBetter => "higher",
            Direction::LowerIsBetter => "lower",
        }
    }
}

/// One tracked gauge from the baseline file.
#[derive(Debug, Clone, PartialEq)]
pub struct Check {
    /// Manifest file name, e.g. `BENCH_serve.json`.
    pub manifest: String,
    /// Gauge key inside `metrics.gauges`.
    pub gauge: String,
    /// Which drift direction is a regression.
    pub direction: Direction,
    /// Recorded reference value.
    pub baseline: f64,
    /// Fractional tolerance band around the baseline (e.g. `0.25`).
    pub tolerance: f64,
}

impl Check {
    /// The bound the current value must respect.
    fn bound(&self) -> f64 {
        match self.direction {
            Direction::HigherIsBetter => self.baseline * (1.0 - self.tolerance),
            Direction::LowerIsBetter => self.baseline * (1.0 + self.tolerance),
        }
    }

    /// Whether `value` is within the band.
    fn passes(&self, value: f64) -> bool {
        match self.direction {
            Direction::HigherIsBetter => value >= self.bound(),
            Direction::LowerIsBetter => value <= self.bound(),
        }
    }
}

/// Parses the bench baseline document (errors cite
/// [`BENCH_BASELINE_PATH`]).
///
/// # Errors
///
/// Returns a message for malformed JSON or missing/ill-typed fields.
pub fn parse_baseline(text: &str) -> Result<Vec<Check>, String> {
    parse_baseline_at(BENCH_BASELINE_PATH, text)
}

/// Parses a baseline document, citing `label` (normally the file's
/// relative path) in every diagnostic.
///
/// # Errors
///
/// Returns a message for malformed JSON or missing/ill-typed fields.
pub fn parse_baseline_at(label: &str, text: &str) -> Result<Vec<Check>, String> {
    let doc = json::parse(text).map_err(|e| format!("{label}: {e}"))?;
    let checks = doc
        .get("checks")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{label}: missing `checks` array"))?;
    let mut out = Vec::with_capacity(checks.len());
    for (i, check) in checks.iter().enumerate() {
        let field = |key: &str| {
            check.get(key).ok_or_else(|| format!("{label}: check {i}: missing `{key}`"))
        };
        let str_field = |key: &str| {
            field(key)?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("{label}: check {i}: `{key}` must be a string"))
        };
        let num_field = |key: &str| {
            field(key)?
                .as_f64()
                .ok_or_else(|| format!("{label}: check {i}: `{key}` must be a number"))
        };
        let tolerance = num_field("tolerance")?;
        if !(0.0..1.0).contains(&tolerance) {
            return Err(format!(
                "{label}: check {i}: tolerance must be in [0, 1), got {tolerance}"
            ));
        }
        out.push(Check {
            manifest: str_field("manifest")?,
            gauge: str_field("gauge")?,
            direction: Direction::parse(&str_field("direction")?)
                .map_err(|e| format!("{label}: check {i}: {e}"))?,
            baseline: num_field("baseline")?,
            tolerance,
        });
    }
    if out.is_empty() {
        return Err(format!("{label}: `checks` is empty — nothing to gate"));
    }
    Ok(out)
}

/// The outcome of comparing one check against a fresh manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckResult {
    /// The check that ran.
    pub check: Check,
    /// The fresh gauge value, or an error message when it could not be
    /// read.
    pub value: Result<f64, String>,
    /// Whether the check passed.
    pub ok: bool,
}

/// Compares every check against the manifests under `dir`.
pub fn run_checks(dir: &Path, checks: &[Check]) -> Vec<CheckResult> {
    // Parse each referenced manifest once.
    let mut manifests: Vec<(String, Result<Json, String>)> = Vec::new();
    for check in checks {
        if manifests.iter().any(|(name, _)| *name == check.manifest) {
            continue;
        }
        let path = dir.join(&check.manifest);
        let parsed = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))
            .and_then(|text| {
                json::parse(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))
            });
        manifests.push((check.manifest.clone(), parsed));
    }
    checks
        .iter()
        .map(|check| {
            let manifest = manifests
                .iter()
                .find(|(name, _)| *name == check.manifest)
                .map(|(_, parsed)| parsed)
                .expect("invariant: every check's manifest was just loaded");
            let value = match manifest {
                Err(e) => Err(e.clone()),
                Ok(doc) => doc
                    .get_path(&["metrics", "gauges", &check.gauge])
                    .and_then(Json::as_f64)
                    .ok_or_else(|| {
                        format!("gauge `{}` not found in {}", check.gauge, check.manifest)
                    }),
            };
            let ok = matches!(value, Ok(v) if check.passes(v));
            CheckResult { check: check.clone(), value, ok }
        })
        .collect()
}

/// Renders the delta table with the `benchcheck` gate name.
pub fn format_table(results: &[CheckResult]) -> String {
    format_table_for("benchcheck", results)
}

/// Renders the delta table, labelling the summary line with `name`
/// (`benchcheck` or `accuracycheck`).
pub fn format_table_for(name: &str, results: &[CheckResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<34} {:>10} {:>10} {:>8} {:>10}  status",
        "gauge", "baseline", "current", "delta", "bound"
    );
    for r in results {
        match &r.value {
            Ok(v) => {
                let delta = if r.check.baseline != 0.0 {
                    (v - r.check.baseline) / r.check.baseline * 100.0
                } else {
                    0.0
                };
                let _ = writeln!(
                    out,
                    "{:<34} {:>10.4} {:>10.4} {:>7.1}% {:>10.4}  {}",
                    r.check.gauge,
                    r.check.baseline,
                    v,
                    delta,
                    r.check.bound(),
                    if r.ok { "ok" } else { "REGRESSED" },
                );
            }
            Err(e) => {
                let _ = writeln!(
                    out,
                    "{:<34} {:>10.4} {:>21}  {e}",
                    r.check.gauge, r.check.baseline, "-"
                );
            }
        }
    }
    let failed = results.iter().filter(|r| !r.ok).count();
    if failed == 0 {
        let _ = writeln!(out, "\n{name}: all {} tracked gauges within tolerance", results.len());
    } else {
        let _ = writeln!(
            out,
            "\n{name}: {failed} of {} tracked gauges regressed (or could not be read)",
            results.len()
        );
    }
    out
}

/// Re-emits the baseline document with values replaced by the fresh
/// measurements (directions and tolerances preserved).
///
/// # Errors
///
/// Returns a message when any fresh value is unavailable — an updated
/// baseline must cover every tracked gauge.
pub fn render_updated_baseline(results: &[CheckResult]) -> Result<String, String> {
    render_updated_baseline_with_comment(results, BENCH_BASELINE_COMMENT)
}

/// [`render_updated_baseline`] with an explicit header comment, for
/// baselines other than the bench one.
///
/// # Errors
///
/// Returns a message when any fresh value is unavailable.
pub fn render_updated_baseline_with_comment(
    results: &[CheckResult],
    comment: &str,
) -> Result<String, String> {
    let mut out = format!("{{\n  \"comment\": \"{comment}\",\n  \"checks\": [\n");
    for (i, r) in results.iter().enumerate() {
        let value = r
            .value
            .as_ref()
            .map_err(|e| format!("cannot update baseline for `{}`: {e}", r.check.gauge))?;
        // `{}` keeps the shortest round-trip representation: `{:.4}`
        // would flatten sub-1e-4 gauges (e.g. f32-divergence maxima) to
        // 0.0000 and make their bands vacuous.
        let _ = write!(
            out,
            "    {{\"manifest\": \"{}\", \"gauge\": \"{}\", \"direction\": \"{}\", \"baseline\": {}, \"tolerance\": {}}}",
            r.check.manifest,
            r.check.gauge,
            r.check.direction.as_str(),
            value,
            r.check.tolerance,
        );
        out.push_str(if i + 1 == results.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ]\n}\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline_doc() -> &'static str {
        r#"{
          "checks": [
            {"manifest": "BENCH_serve.json", "gauge": "serve.speedup_warm_vs_naive",
             "direction": "higher", "baseline": 5.3, "tolerance": 0.25},
            {"manifest": "BENCH_serve.json", "gauge": "serve.cache_hit_rate",
             "direction": "higher", "baseline": 0.6667, "tolerance": 0.02}
          ]
        }"#
    }

    #[test]
    fn parses_and_bands() {
        let checks = parse_baseline(baseline_doc()).unwrap();
        assert_eq!(checks.len(), 2);
        let speedup = &checks[0];
        assert_eq!(speedup.direction, Direction::HigherIsBetter);
        assert!(speedup.passes(5.3));
        assert!(speedup.passes(4.0), "within the 25% band");
        assert!(!speedup.passes(3.9), "below the band");
    }

    #[test]
    fn lower_is_better_flips_the_band() {
        let check = Check {
            manifest: "m".into(),
            gauge: "g".into(),
            direction: Direction::LowerIsBetter,
            baseline: 1.0,
            tolerance: 0.1,
        };
        assert!(check.passes(1.05));
        assert!(!check.passes(1.2));
    }

    #[test]
    fn rejects_malformed_baselines() {
        assert!(parse_baseline("{}").is_err());
        assert!(parse_baseline(r#"{"checks": []}"#).is_err());
        assert!(parse_baseline(
            r#"{"checks": [{"manifest": "m", "gauge": "g", "direction": "sideways",
                "baseline": 1.0, "tolerance": 0.1}]}"#
        )
        .is_err());
        assert!(parse_baseline(
            r#"{"checks": [{"manifest": "m", "gauge": "g", "direction": "higher",
                "baseline": 1.0, "tolerance": 1.5}]}"#
        )
        .is_err());
    }

    #[test]
    fn end_to_end_against_a_manifest_on_disk() {
        let dir = std::env::temp_dir().join("deepoheat-benchcheck-test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("BENCH_serve.json"),
            r#"{"name":"serve","metrics":{"gauges":{
                "serve.speedup_warm_vs_naive":5.1,"serve.cache_hit_rate":0.6667}}}"#,
        )
        .unwrap();
        let checks = parse_baseline(baseline_doc()).unwrap();
        let results = run_checks(&dir, &checks);
        assert!(results.iter().all(|r| r.ok), "{}", format_table(&results));

        // A missing gauge is a failure, not a silent pass.
        std::fs::write(dir.join("BENCH_serve.json"), r#"{"name":"serve","metrics":{"gauges":{}}}"#)
            .unwrap();
        let results = run_checks(&dir, &checks);
        assert!(results.iter().all(|r| !r.ok));
        assert!(format_table(&results).contains("not found"));
    }

    #[test]
    fn tiny_baselines_survive_update_round_trips() {
        // The f32-divergence gauge sits near 1e-7; a fixed-precision
        // renderer would flatten it to 0 and make its band vacuous.
        let check = Check {
            manifest: "BENCH_accuracy.json".into(),
            gauge: "accuracy.f32.divergence.max".into(),
            direction: Direction::LowerIsBetter,
            baseline: 0.0,
            tolerance: 0.9,
        };
        let results = vec![CheckResult { check, value: Ok(7.61e-8), ok: true }];
        let text = render_updated_baseline_with_comment(&results, ACCURACY_BASELINE_COMMENT)
            .expect("renderable");
        let reparsed = parse_baseline_at(ACCURACY_BASELINE_PATH, &text).expect("parseable");
        assert!((reparsed[0].baseline - 7.61e-8).abs() < 1e-15, "{}", reparsed[0].baseline);
    }

    #[test]
    fn parse_errors_cite_the_requested_label() {
        let err = parse_baseline_at("xtask/custom.json", "{}").unwrap_err();
        assert!(err.contains("xtask/custom.json"), "{err}");
    }

    #[test]
    fn updated_baseline_round_trips() {
        let checks = parse_baseline(baseline_doc()).unwrap();
        let results: Vec<CheckResult> = checks
            .iter()
            .map(|c| CheckResult { check: c.clone(), value: Ok(c.baseline * 1.1), ok: true })
            .collect();
        let text = render_updated_baseline(&results).unwrap();
        let reparsed = parse_baseline(&text).unwrap();
        assert_eq!(reparsed.len(), checks.len());
        assert!((reparsed[0].baseline - 5.3 * 1.1).abs() < 1e-3);
        assert_eq!(reparsed[0].tolerance, checks[0].tolerance);
    }
}
