//! Conservative workspace call graph over the extracted items.
//!
//! Resolution rules (deliberately over-approximating — a missed edge can
//! hide a reachable panic, a spurious edge only widens a ratchet):
//!
//! * **free calls** `foo(` — functions named `foo` in the same module,
//!   else whatever the module's `use` map binds `foo` to, else any free
//!   `foo` in the same crate;
//! * **path calls** `a::b::foo(` — every function whose qualified path
//!   ends with the called segments (`deepoheat_x` prefixes normalize to
//!   the short crate name, `crate`/`self`/`super` heads are dropped);
//! * **method calls** `recv.foo(` — if the receiver chain types to a
//!   workspace struct, that type's `foo` methods; if it types to a
//!   *known-external* type (e.g. `Condvar`), no edge; only a receiver we
//!   cannot type at all falls back to **every** same-named method in the
//!   workspace — except for ubiquitous std names
//!   ([`FALLBACK_STOPLIST`]), where an untyped receiver is almost
//!   always a std container/guard and the fallback would wire, say,
//!   every `vec.push(x)` to `CooMatrix::push`.
//!
//! Test functions are excluded on both ends: tests may panic and lock
//! freely.

use std::collections::{BTreeMap, BTreeSet};

use crate::items::{self, FileItems, FnItem, StructItem, UseEntry, CALL_KEYWORDS};
use crate::lexer::{lex, Tok, TokKind};
use crate::lints::FileClass;
use crate::scanner::ScannedFile;

/// Method names so common on std containers, guards, iterators, and
/// numerics that an *untypeable* receiver calling one is almost certainly
/// not a workspace method. The all-same-named-methods fallback is
/// suppressed for these: the spurious edges it would add (every
/// `vec.push(…)` → `CooMatrix::push`, every `guard.flush()` →
/// `JsonlSink::flush`) drown both the panic-reachability and lock-order
/// passes in false positives. Workspace methods sharing these names are
/// still resolved whenever the receiver can be typed (a `self` chain, an
/// annotated local/param, or a `let x = Type::new(…)` constructor).
pub const FALLBACK_STOPLIST: &[&str] = &[
    "abs",
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "chain",
    "clear",
    "clone",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "count",
    "dedup",
    "drain",
    "extend",
    "entry",
    "enumerate",
    "eq",
    "err",
    "expect",
    "exp",
    "filter",
    "find",
    "first",
    "flush",
    "fmt",
    "fold",
    "from",
    "get",
    "get_mut",
    "get_ref",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "ln",
    "load",
    "lock",
    "map",
    "map_err",
    "max",
    "min",
    "ne",
    "next",
    "notify_all",
    "notify_one",
    "ok",
    "ok_or",
    "ok_or_else",
    "or_else",
    "parse",
    "partial_cmp",
    "pop",
    "pop_back",
    "pop_front",
    "position",
    "powf",
    "powi",
    "product",
    "push",
    "push_back",
    "push_front",
    "read",
    "recv",
    "remove",
    "replace",
    "retain",
    "rev",
    "round",
    "send",
    "sort",
    "sort_by",
    "sort_by_key",
    "split",
    "sqrt",
    "starts_with",
    "store",
    "sum",
    "swap",
    "take",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "try_lock",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "wait",
    "write",
    "write_all",
    "zip",
];

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `foo(…)`.
    Free,
    /// `a::b::foo(…)` — `path` holds the leading segments.
    Path(Vec<String>),
    /// `recv.foo(…)` — `chain` holds the receiver idents, innermost first
    /// (`self.queue.state.lock()` → `["self", "queue", "state"]`).
    Method(Vec<String>),
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Byte offset of the callee name token.
    pub offset: usize,
    pub name: String,
    pub kind: CallKind,
    /// Resolved candidate callees (indices into [`Workspace::fns`]).
    pub targets: Vec<usize>,
}

/// The fully-resolved workspace: files, symbols, and the call graph.
pub struct Workspace {
    pub files: Vec<ScannedFile>,
    pub classes: Vec<FileClass>,
    pub fns: Vec<FnItem>,
    pub structs: Vec<StructItem>,
    pub uses: Vec<UseEntry>,
    /// Call sites per function, parallel to `fns`.
    pub calls: Vec<Vec<CallSite>>,
    /// Adjacency: callee ids per function, deduplicated and sorted.
    pub edges: Vec<BTreeSet<usize>>,
    fn_by_name: BTreeMap<String, Vec<usize>>,
    method_by_name: BTreeMap<String, Vec<usize>>,
    struct_by_name: BTreeMap<String, Vec<usize>>,
}

impl Workspace {
    /// Builds the symbol table and call graph from already-scanned
    /// library files. `classes` must be parallel to `files`.
    pub fn build(files: Vec<ScannedFile>, classes: Vec<FileClass>) -> Self {
        let mut fns = Vec::new();
        let mut structs = Vec::new();
        let mut uses = Vec::new();
        for (idx, (file, class)) in files.iter().zip(&classes).enumerate() {
            let FileItems { fns: f, structs: s, uses: u } =
                items::extract(file, idx, &class.crate_name);
            fns.extend(f);
            structs.extend(s);
            uses.extend(u);
        }

        let mut fn_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut method_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (id, f) in fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            fn_by_name.entry(f.name.clone()).or_default().push(id);
            if f.self_type.is_some() {
                method_by_name.entry(f.name.clone()).or_default().push(id);
            }
        }
        let mut struct_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (id, s) in structs.iter().enumerate() {
            struct_by_name.entry(s.name.clone()).or_default().push(id);
        }

        let mut ws = Workspace {
            files,
            classes,
            fns,
            structs,
            uses,
            calls: Vec::new(),
            edges: Vec::new(),
            fn_by_name,
            method_by_name,
            struct_by_name,
        };
        ws.calls = (0..ws.fns.len()).map(|id| ws.extract_calls(id)).collect();
        ws.edges = ws
            .calls
            .iter()
            .map(|sites| sites.iter().flat_map(|s| s.targets.iter().copied()).collect())
            .collect();
        ws
    }

    /// Total number of resolved call edges.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(BTreeSet::len).sum()
    }

    /// Function ids whose qualified id equals `qualified`.
    pub fn fn_by_qualified(&self, qualified: &str) -> Option<usize> {
        self.fns.iter().position(|f| f.qualified() == qualified)
    }

    /// The ids of every function that can transitively reach one of
    /// `seeds` (including the seeds themselves): a reverse BFS.
    pub fn reaches(&self, seeds: &BTreeSet<usize>) -> Vec<bool> {
        let mut redges: Vec<Vec<usize>> = vec![Vec::new(); self.fns.len()];
        for (from, outs) in self.edges.iter().enumerate() {
            for &to in outs {
                redges[to].push(from);
            }
        }
        let mut hit = vec![false; self.fns.len()];
        let mut queue: Vec<usize> = seeds.iter().copied().collect();
        for &s in seeds {
            hit[s] = true;
        }
        while let Some(id) = queue.pop() {
            for &pred in &redges[id] {
                if !hit[pred] {
                    hit[pred] = true;
                    queue.push(pred);
                }
            }
        }
        hit
    }

    /// A shortest call path from `from` to any function in `goal`,
    /// inclusive of both ends. `None` if unreachable.
    pub fn path_to(&self, from: usize, goal: &BTreeSet<usize>) -> Option<Vec<usize>> {
        let mut prev: Vec<Option<usize>> = vec![None; self.fns.len()];
        let mut seen = vec![false; self.fns.len()];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(from);
        seen[from] = true;
        while let Some(id) = queue.pop_front() {
            if goal.contains(&id) {
                let mut path = vec![id];
                let mut cur = id;
                while let Some(p) = prev[cur] {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            for &next in &self.edges[id] {
                if !seen[next] {
                    seen[next] = true;
                    prev[next] = Some(id);
                    queue.push_back(next);
                }
            }
        }
        None
    }

    // --- call extraction -------------------------------------------------

    fn extract_calls(&self, fn_id: usize) -> Vec<CallSite> {
        let f = &self.fns[fn_id];
        if f.is_test {
            return Vec::new();
        }
        let file = &self.files[f.file];
        let toks = lex(&file.masked[f.body.0..f.body.1]);
        let base = f.body.0;
        let mut sites = Vec::new();
        for i in 0..toks.len() {
            if toks[i].kind != TokKind::Ident {
                continue;
            }
            let name = tok_text(&toks[i], &file.masked, base);
            if CALL_KEYWORDS.contains(&name) {
                continue;
            }
            let followed_by_paren =
                toks.get(i + 1).is_some_and(|t| tok_text(t, &file.masked, base) == "(");
            if !followed_by_paren {
                continue;
            }
            let prev = i.checked_sub(1).map(|j| tok_text(&toks[j], &file.masked, base));
            let kind = match prev {
                Some(".") => CallKind::Method(receiver_chain(&toks, i, &file.masked, base)),
                Some("::") => CallKind::Path(path_segments(&toks, i, &file.masked, base)),
                _ => CallKind::Free,
            };
            let name = name.to_string();
            let targets = self.resolve(fn_id, &name, &kind);
            sites.push(CallSite { offset: base + toks[i].start, name, kind, targets });
        }
        sites
    }

    fn resolve(&self, fn_id: usize, name: &str, kind: &CallKind) -> Vec<usize> {
        let caller = &self.fns[fn_id];
        let mut out = match kind {
            CallKind::Free => self.resolve_free(caller, name),
            CallKind::Path(segs) => self.resolve_path(segs, name),
            CallKind::Method(chain) => self.resolve_method(fn_id, chain, name),
        };
        out.retain(|&id| !self.fns[id].is_test && id != fn_id);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn resolve_free(&self, caller: &FnItem, name: &str) -> Vec<usize> {
        let Some(candidates) = self.fn_by_name.get(name) else { return Vec::new() };
        // Same module, free functions first.
        let same_module: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&id| {
                let f = &self.fns[id];
                f.self_type.is_none()
                    && f.crate_name == caller.crate_name
                    && f.module == caller.module
            })
            .collect();
        if !same_module.is_empty() {
            return same_module;
        }
        // A `use` binding for the bare name.
        for entry in &self.uses {
            if entry.crate_name == caller.crate_name
                && entry.module == caller.module
                && entry.local == name
            {
                let hits = self.resolve_path_suffix(&entry.target);
                if !hits.is_empty() {
                    return hits;
                }
            }
        }
        // Any free fn of that name in the same crate.
        candidates
            .iter()
            .copied()
            .filter(|&id| {
                let f = &self.fns[id];
                f.self_type.is_none() && f.crate_name == caller.crate_name
            })
            .collect()
    }

    fn resolve_path(&self, segs: &[String], name: &str) -> Vec<usize> {
        let mut full = segs.to_vec();
        full.push(name.to_string());
        self.resolve_path_suffix(&full)
    }

    /// Functions whose qualified segments end with `suffix`.
    /// `deepoheat_x` crate prefixes normalize to the short crate name and
    /// `crate`/`self`/`super` heads are dropped before matching.
    fn resolve_path_suffix(&self, suffix: &[String]) -> Vec<usize> {
        let suffix: Vec<String> = suffix
            .iter()
            .filter(|s| !matches!(s.as_str(), "crate" | "self" | "super"))
            .map(|s| s.strip_prefix("deepoheat_").unwrap_or(s).to_string())
            .collect();
        let Some(name) = suffix.last() else { return Vec::new() };
        let Some(candidates) = self.fn_by_name.get(name.as_str()) else { return Vec::new() };
        candidates
            .iter()
            .copied()
            .filter(|&id| {
                let segs = self.fns[id].segments();
                segs.len() >= suffix.len() && segs[segs.len() - suffix.len()..] == suffix[..]
            })
            .collect()
    }

    fn resolve_method(&self, fn_id: usize, chain: &[String], name: &str) -> Vec<usize> {
        match self.receiver_type(fn_id, chain) {
            ReceiverType::Struct(ty) => self
                .method_by_name
                .get(name)
                .map(|ids| {
                    ids.iter()
                        .copied()
                        .filter(|&id| self.fns[id].self_type.as_deref() == Some(ty.as_str()))
                        .collect()
                })
                .unwrap_or_default(),
            // A concretely-typed external receiver (Condvar, Vec, …):
            // its methods live outside the workspace.
            ReceiverType::External => Vec::new(),
            ReceiverType::Unknown => {
                if FALLBACK_STOPLIST.contains(&name) {
                    return Vec::new();
                }
                self.method_by_name.get(name).cloned().unwrap_or_default()
            }
        }
    }

    /// Types a receiver chain: `self.queue.state` starts at the enclosing
    /// impl type and walks field types, peeling `Arc`/`Box`/`Rc`/`&`.
    fn receiver_type(&self, fn_id: usize, chain: &[String]) -> ReceiverType {
        let caller = &self.fns[fn_id];
        let (mut cur, rest): (String, &[String]) = match chain.first().map(String::as_str) {
            Some("self") => match &caller.self_type {
                Some(t) => (t.clone(), &chain[1..]),
                None => return ReceiverType::Unknown,
            },
            Some(head) => {
                // A local variable or parameter with an explicit type.
                match self.local_type(fn_id, head) {
                    Some(ty) => (ty, &chain[1..]),
                    None => return ReceiverType::Unknown,
                }
            }
            None => return ReceiverType::Unknown,
        };
        for seg in rest {
            let Some(sid) = self.struct_in_crate(&cur, &caller.crate_name) else {
                return if self.struct_by_name.contains_key(&cur) {
                    ReceiverType::Unknown // ambiguous cross-crate struct
                } else {
                    ReceiverType::External
                };
            };
            let s = &self.structs[sid];
            let Some((_, ty)) = s.fields.iter().find(|(n, _)| n == seg) else {
                return ReceiverType::External; // not a field ⇒ std/deref territory
            };
            cur = peel_type(ty);
        }
        if self.struct_in_crate(&cur, &caller.crate_name).is_some()
            || self.struct_by_name.contains_key(&cur)
        {
            ReceiverType::Struct(cur)
        } else if cur.chars().next().is_some_and(char::is_uppercase) {
            ReceiverType::External
        } else {
            ReceiverType::Unknown
        }
    }

    /// Resolves a receiver chain to the struct field it terminates in,
    /// when every step walks workspace struct fields: returns
    /// `(struct_id, field_name, field_type_text)` for the final segment.
    /// `self.queue.state` → the `state` field of `Queue` (through the
    /// `queue: Arc<Queue>` field). The lock-order pass uses this to give
    /// every `Mutex` field a stable identity.
    pub fn chain_final_field(
        &self,
        fn_id: usize,
        chain: &[String],
    ) -> Option<(usize, String, String)> {
        let caller = &self.fns[fn_id];
        let (mut cur, rest): (String, &[String]) = match chain.first().map(String::as_str)? {
            "self" => (caller.self_type.clone()?, &chain[1..]),
            head => (self.local_type(fn_id, head)?, &chain[1..]),
        };
        let mut last = None;
        for seg in rest {
            let sid = self.struct_in_crate(&cur, &caller.crate_name)?;
            let (name, ty) = self.structs[sid].fields.iter().find(|(n, _)| n == seg)?.clone();
            last = Some((sid, name, ty.clone()));
            cur = peel_type(&ty);
        }
        last
    }

    fn struct_in_crate(&self, name: &str, crate_name: &str) -> Option<usize> {
        let ids = self.struct_by_name.get(name)?;
        ids.iter()
            .copied()
            .find(|&id| self.structs[id].crate_name == crate_name)
            .or_else(|| (ids.len() == 1).then_some(ids[0]))
    }

    /// The declared type of a parameter or `let`-annotated local, if the
    /// function spells one out; otherwise the type inferred from a
    /// constructor-style initializer (`let x = Type::new(…)`).
    fn local_type(&self, fn_id: usize, var: &str) -> Option<String> {
        let f = &self.fns[fn_id];
        let file = &self.files[f.file];
        for range in [f.sig, f.body] {
            let toks = lex(&file.masked[range.0..range.1]);
            for i in 0..toks.len() {
                if toks[i].kind == TokKind::Ident
                    && tok_text(&toks[i], &file.masked, range.0) == var
                    && toks.get(i + 1).is_some_and(|t| tok_text(t, &file.masked, range.0) == ":")
                {
                    // Concatenate the type tokens up to `,`/`)`/`=`/`;`.
                    let mut ty = String::new();
                    let mut depth = 0i32;
                    for t in &toks[i + 2..] {
                        let s = tok_text(t, &file.masked, range.0);
                        match s {
                            "<" | "(" | "[" => depth += 1,
                            ">" | ")" | "]" if depth > 0 => depth -= 1,
                            "," | ")" | "=" | ";" | "{" if depth == 0 => break,
                            _ => {}
                        }
                        ty.push_str(s);
                    }
                    return Some(peel_type(&ty));
                }
            }
        }
        self.constructor_type(f, var)
    }

    /// Infers a local's type from `let [mut] var = [path::]Type::ctor(…)`:
    /// the path segment before the final associated call, when it is
    /// capitalized like a type. Keeps common constructor-built receivers
    /// (`let latch = Latch::new(…)`) typeable without annotations.
    fn constructor_type(&self, f: &FnItem, var: &str) -> Option<String> {
        let file = &self.files[f.file];
        let range = f.body;
        let toks = lex(&file.masked[range.0..range.1]);
        let text = |i: usize| toks.get(i).map(|t| tok_text(t, &file.masked, range.0));
        for i in 0..toks.len() {
            if text(i) != Some("let") {
                continue;
            }
            let mut j = i + 1;
            if text(j) == Some("mut") {
                j += 1;
            }
            if text(j) != Some(var) || text(j + 1) != Some("=") {
                continue;
            }
            // Collect the initializer's leading `a::B::c` path.
            let mut segs: Vec<&str> = Vec::new();
            let mut k = j + 2;
            while toks.get(k).is_some_and(|t| t.kind == TokKind::Ident) {
                segs.push(text(k).unwrap_or(""));
                if text(k + 1) == Some("::") {
                    k += 2;
                } else {
                    break;
                }
            }
            if segs.len() >= 2 {
                let ty = segs[segs.len() - 2];
                if ty.chars().next().is_some_and(char::is_uppercase) {
                    return Some(ty.to_string());
                }
            }
        }
        None
    }
}

enum ReceiverType {
    Struct(String),
    External,
    Unknown,
}

/// Strips reference/smart-pointer wrappers from a type text and returns
/// the head type name: `&Arc<Queue>` → `Queue`, `Mutex<T>` → `Mutex`.
/// Works on both spaced (`&mut Vec<u8>`) and token-concatenated
/// (`&mutVec<u8>`) type texts.
pub fn peel_type(ty: &str) -> String {
    let mut t = ty.trim();
    loop {
        t = t.trim_start().trim_start_matches('&').trim_start();
        t = t.trim_start_matches("mut").trim_start();
        if let Some(rest) = t.strip_prefix('\'') {
            // Skip a lifetime: `'a `, `'static`, `'_`.
            let end = rest.find(|c: char| !(c.is_alphanumeric() || c == '_')).unwrap_or(rest.len());
            t = rest[end..].trim_start();
            continue;
        }
        let head = head_ident(t);
        if matches!(head, "Arc" | "Box" | "Rc" | "RefCell" | "Cell" | "Pin") {
            if let Some((_, inner)) = t.split_once('<') {
                t = inner;
                continue;
            }
        }
        return head.to_string();
    }
}

fn head_ident(t: &str) -> &str {
    // Last segment of the leading path: `sync::Mutex<..>` → `Mutex`.
    let end = t.find(['<', '>', '(', '[', ',', ' ']).unwrap_or(t.len());
    let path = &t[..end];
    path.rsplit("::").next().unwrap_or(path)
}

fn tok_text<'a>(tok: &Tok, masked: &'a [u8], base: usize) -> &'a str {
    std::str::from_utf8(&masked[base + tok.start..base + tok.end]).unwrap_or("")
}

/// Collects the leading path segments of a `a::b::name(` call, given the
/// index of `name`.
fn path_segments(toks: &[Tok], name_idx: usize, masked: &[u8], base: usize) -> Vec<String> {
    let mut segs = Vec::new();
    let mut j = name_idx;
    // Walk backwards over `seg ::` pairs.
    while j >= 2
        && tok_text(&toks[j - 1], masked, base) == "::"
        && toks[j - 2].kind == TokKind::Ident
    {
        segs.push(tok_text(&toks[j - 2], masked, base).to_string());
        j -= 2;
    }
    segs.reverse();
    segs
}

/// Collects the receiver idents of a `recv.m(` call, innermost-first,
/// given the index of `m`. Stops at anything that is not a plain
/// `ident .` chain (a call result, an index, a literal).
fn receiver_chain(toks: &[Tok], name_idx: usize, masked: &[u8], base: usize) -> Vec<String> {
    let mut chain = Vec::new();
    let mut j = name_idx;
    while j >= 2
        && tok_text(&toks[j - 1], masked, base) == "."
        && toks[j - 2].kind == TokKind::Ident
    {
        chain.push(tok_text(&toks[j - 2], masked, base).to_string());
        j -= 2;
    }
    if j >= 1 && tok_text(&toks[j - 1], masked, base) == "." {
        // The chain starts at a non-ident (e.g. `foo().bar.m(`): the
        // receiver's root is unknowable here.
        return Vec::new();
    }
    chain.reverse();
    chain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::classify;

    fn build(sources: &[(&str, &str)]) -> Workspace {
        let files: Vec<ScannedFile> =
            sources.iter().map(|(p, s)| ScannedFile::new(*p, *s)).collect();
        let classes: Vec<FileClass> =
            sources.iter().map(|(p, _)| classify(p).expect("classifiable path")).collect();
        Workspace::build(files, classes)
    }

    fn edge_names(ws: &Workspace, from: &str) -> Vec<String> {
        let id = ws.fn_by_qualified(from).unwrap_or_else(|| panic!("no fn {from}"));
        ws.edges[id].iter().map(|&t| ws.fns[t].qualified()).collect()
    }

    #[test]
    fn free_calls_resolve_within_module_then_crate() {
        let ws = build(&[(
            "crates/fdm/src/solver.rs",
            "pub fn solve() { helper(); }\nfn helper() {}\n",
        )]);
        assert_eq!(edge_names(&ws, "fdm::solver::solve"), vec!["fdm::solver::helper"]);
    }

    #[test]
    fn path_calls_resolve_by_suffix_across_crates() {
        let ws = build(&[
            (
                "crates/serve/src/engine.rs",
                "pub fn infer() { deepoheat_core::model::predict(); }\n",
            ),
            ("crates/core/src/model.rs", "pub fn predict() {}\n"),
        ]);
        assert_eq!(edge_names(&ws, "serve::engine::infer"), vec!["core::model::predict"]);
    }

    #[test]
    fn method_calls_resolve_via_receiver_field_types() {
        let src = "struct Latch { n: u32 }\nimpl Latch { fn wait(&self) {} }\nstruct Queue { state: u32 }\nimpl Queue { fn wait(&self) {} }\nstruct Pool { latch: Arc<Latch> }\nimpl Pool { fn run(&self) { self.latch.wait(); } }\n";
        let ws = build(&[("crates/parallel/src/lib.rs", src)]);
        // Typed receiver: only Latch::wait, not Queue::wait.
        assert_eq!(edge_names(&ws, "parallel::Pool::run"), vec!["parallel::Latch::wait"]);
    }

    #[test]
    fn untyped_receivers_fall_back_to_all_same_named_methods() {
        let src = "struct A;\nimpl A { fn go(&self) {} }\nstruct B;\nimpl B { fn go(&self) {} }\nfn driver(x: &dyn std::any::Any) { mystery().go(); }\nfn mystery() -> A { A }\n";
        let ws = build(&[("crates/core/src/lib.rs", src)]);
        let edges = edge_names(&ws, "core::driver");
        assert!(edges.contains(&"core::A::go".to_string()), "{edges:?}");
        assert!(edges.contains(&"core::B::go".to_string()), "{edges:?}");
    }

    #[test]
    fn stoplisted_names_suppress_the_untyped_fallback() {
        // `buf` is an untypeable local; `.push(…)` must NOT wire to
        // `Coo::push` — but a receiver typed by annotation still does.
        let src = "struct Coo;\nimpl Coo { fn push(&self) {} }\n\
                   fn blur() { let buf = mystery(); buf.push(1); }\n\
                   fn sharp(m: &Coo) { m.push(); }\n\
                   fn mystery() -> Vec<u8> { Vec::new() }\n";
        let ws = build(&[("crates/linalg/src/lib.rs", src)]);
        assert_eq!(edge_names(&ws, "linalg::blur"), vec!["linalg::mystery"]);
        assert_eq!(edge_names(&ws, "linalg::sharp"), vec!["linalg::Coo::push"]);
    }

    #[test]
    fn constructor_initializers_type_unannotated_locals() {
        // `let mut m = Coo::new();` types `m` without an annotation, so
        // the stoplisted `.push` still resolves to the workspace method.
        let src = "struct Coo;\nimpl Coo { fn new() -> Coo { Coo } fn push(&self) {} }\n\
                   fn build() { let mut m = Coo::new(); m.push(); }\n\
                   fn external() { let s = String::new(); s.len(); }\n";
        let ws = build(&[("crates/linalg/src/lib.rs", src)]);
        assert_eq!(edge_names(&ws, "linalg::build"), vec!["linalg::Coo::new", "linalg::Coo::push"]);
        // `String` is external: `.len()` produces no edges.
        assert!(edge_names(&ws, "linalg::external").is_empty());
    }

    #[test]
    fn externally_typed_receivers_produce_no_edges() {
        let src = "struct Latch { done: Condvar }\nstruct Gate;\nimpl Gate { fn wait(&self) {} }\nimpl Latch { fn park(&self) { self.done.wait(); } }\n";
        let ws = build(&[("crates/parallel/src/lib.rs", src)]);
        // `done` types to Condvar (external): Gate::wait must NOT appear.
        assert!(edge_names(&ws, "parallel::Latch::park").is_empty());
    }

    #[test]
    fn use_bindings_resolve_bare_calls_across_crates() {
        let ws = build(&[
            (
                "crates/serve/src/lib.rs",
                "use deepoheat_telemetry::counter;\npub fn tick() { counter(); }\n",
            ),
            ("crates/telemetry/src/lib.rs", "pub fn counter() {}\n"),
        ]);
        assert_eq!(edge_names(&ws, "serve::tick"), vec!["telemetry::counter"]);
    }

    #[test]
    fn test_functions_are_excluded_from_the_graph() {
        let src = "pub fn lib() {}\n#[cfg(test)]\nmod tests { use super::*; #[test] fn t() { lib(); } }\n";
        let ws = build(&[("crates/core/src/lib.rs", src)]);
        let lib = ws.fn_by_qualified("core::lib").unwrap();
        assert!(ws.edges[lib].is_empty());
        assert_eq!(ws.edge_count(), 0);
    }

    #[test]
    fn reachability_and_paths() {
        let src = "pub fn entry() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\nfn lonely() {}\n";
        let ws = build(&[("crates/core/src/lib.rs", src)]);
        let leaf = ws.fn_by_qualified("core::leaf").unwrap();
        let entry = ws.fn_by_qualified("core::entry").unwrap();
        let lonely = ws.fn_by_qualified("core::lonely").unwrap();
        let seeds: BTreeSet<usize> = [leaf].into_iter().collect();
        let hit = ws.reaches(&seeds);
        assert!(hit[entry] && hit[leaf] && !hit[lonely]);
        let path = ws.path_to(entry, &seeds).unwrap();
        let names: Vec<_> = path.iter().map(|&id| ws.fns[id].name.clone()).collect();
        assert_eq!(names, vec!["entry", "mid", "leaf"]);
    }

    #[test]
    fn keywords_and_macro_names_are_not_calls() {
        let src = "pub fn f(x: u32) -> u32 { if (x > 0) { return (x); } panic!(\"no\"); }\n";
        let ws = build(&[("crates/core/src/lib.rs", src)]);
        let f = ws.fn_by_qualified("core::f").unwrap();
        assert!(ws.calls[f].is_empty(), "{:?}", ws.calls[f]);
    }

    #[test]
    fn peel_type_unwraps_smart_pointers() {
        assert_eq!(peel_type("Arc<Queue>"), "Queue");
        assert_eq!(peel_type("&Arc<Box<Pool>>"), "Pool");
        assert_eq!(peel_type("Mutex<QueueState>"), "Mutex");
        assert_eq!(peel_type("sync::Condvar"), "Condvar");
        assert_eq!(peel_type("&mut Vec<u8>"), "Vec");
    }
}
