//! The float-determinism lint family over result-producing crates.
//!
//! PERFORMANCE.md promises bitwise-identical results at any thread count;
//! these lints catch the three habits that quietly break that promise or
//! smuggle panics into numeric code:
//!
//! * [`lint::FLOAT_EQ`] — `==`/`!=` with a floating-point operand
//!   (a float literal, or an identifier declared `: f64`/`: f32`
//!   anywhere in the file). Exact comparison is order-sensitive once
//!   reductions are reassociated; use a tolerance, or allowlist genuine
//!   exact-zero sentinel checks.
//! * [`lint::FLOAT_CMP_UNWRAP`] — `partial_cmp(..)` chained into
//!   `.unwrap()`/`.expect(..)`: panics on NaN, and `sort_by` keys built
//!   this way make whole pipelines panic-capable. Use `total_cmp`.
//! * [`lint::FLOAT_AS_LOSSY`] — `as f32` anywhere (silent precision
//!   loss), and float-to-integer `as` casts (saturating, rounds toward
//!   zero). Deliberate precision-lowering modules go in the allowlist.

use crate::items;
use crate::lexer::{is_float_literal, lex, TokKind};
use crate::lints::{lint, Diagnostic, FileClass, FileKind, HASH_LINT_CRATES};
use crate::scanner::ScannedFile;

const INT_TYPES: &[&str] =
    &["i8", "i16", "i32", "i64", "i128", "isize", "u8", "u16", "u32", "u64", "u128", "usize"];

/// Runs the family over one file, appending findings.
pub fn check(file: &ScannedFile, class: &FileClass, out: &mut Vec<Diagnostic>) {
    if class.kind != FileKind::Library || !HASH_LINT_CRATES.contains(&class.crate_name.as_str()) {
        return;
    }
    let toks = lex(&file.masked);
    let texts: Vec<&str> = toks.iter().map(|t| t.text(&file.masked)).collect();

    // Identifiers declared as floats (`x: f64`, `y: &mut f32`), scoped to
    // the enclosing function: a `v: f64` parameter in one helper must not
    // turn every other function's `v` into a float. Declarations outside
    // any function (struct fields, consts) land in the file-wide set.
    let fns = items::extract(file, 0, &class.crate_name).fns;
    let enclosing_fn =
        |off: usize| -> Option<usize> { fns.iter().position(|f| f.sig.0 <= off && off < f.body.1) };
    let mut file_wide = std::collections::BTreeSet::new();
    let mut per_fn: Vec<std::collections::BTreeSet<&str>> =
        vec![std::collections::BTreeSet::new(); fns.len()];
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident || texts.get(i + 1) != Some(&":") {
            continue;
        }
        let mut j = i + 2;
        while matches!(texts.get(j), Some(&"&") | Some(&"mut")) {
            j += 1;
        }
        if matches!(texts.get(j), Some(&"f64") | Some(&"f32")) {
            match enclosing_fn(toks[i].start) {
                Some(f) => {
                    per_fn[f].insert(texts[i]);
                }
                None => {
                    file_wide.insert(texts[i]);
                }
            }
        }
    }

    let is_float_operand = |idx: usize| -> bool {
        let Some(t) = toks.get(idx) else { return false };
        match t.kind {
            TokKind::Number => is_float_literal(texts[idx]),
            TokKind::Ident => {
                // A bare identifier only: `v.shape()` or `v(…)` is the
                // *result* of a call, whose type the ident's cannot prove.
                if matches!(texts.get(idx + 1), Some(&".") | Some(&"(") | Some(&"::")) {
                    return false;
                }
                file_wide.contains(texts[idx])
                    || enclosing_fn(t.start).is_some_and(|f| per_fn[f].contains(texts[idx]))
            }
            _ => false,
        }
    };

    for i in 0..toks.len() {
        let off = toks[i].start;
        if file.in_test_code(off) {
            continue;
        }
        match (toks[i].kind, texts[i]) {
            (TokKind::Punct, "==" | "!=")
                if is_float_operand(i.wrapping_sub(1)) || is_float_operand(i + 1) =>
            {
                out.push(Diagnostic {
                    lint: lint::FLOAT_EQ,
                    path: file.path.clone(),
                    line: file.line_of(off),
                    message: format!(
                        "exact float comparison `{}`: reassociated reductions make this \
                         order-sensitive; compare against a tolerance (or allowlist an \
                         exact-zero sentinel check with an argument)",
                        texts[i]
                    ),
                });
            }
            (TokKind::Ident, "partial_cmp") if texts.get(i + 1) == Some(&"(") => {
                if let Some(close) = matching_close(&texts, i + 1) {
                    if texts.get(close + 1) == Some(&".")
                        && matches!(texts.get(close + 2), Some(&"unwrap") | Some(&"expect"))
                    {
                        out.push(Diagnostic {
                            lint: lint::FLOAT_CMP_UNWRAP,
                            path: file.path.clone(),
                            line: file.line_of(off),
                            message: "`partial_cmp(..).unwrap()` panics on NaN and makes the \
                                      comparison panic-capable; use `total_cmp` for float keys"
                                .to_string(),
                        });
                    }
                }
            }
            (TokKind::Ident, "as") => {
                let target = texts.get(i + 1).copied().unwrap_or("");
                if target == "f32" {
                    out.push(Diagnostic {
                        lint: lint::FLOAT_AS_LOSSY,
                        path: file.path.clone(),
                        line: file.line_of(off),
                        message: "`as f32` silently narrows precision in a result-producing \
                                  crate; keep f64 end-to-end or allowlist the deliberate \
                                  lowering module"
                            .to_string(),
                    });
                } else if INT_TYPES.contains(&target) && is_float_operand(i.wrapping_sub(1)) {
                    out.push(Diagnostic {
                        lint: lint::FLOAT_AS_LOSSY,
                        path: file.path.clone(),
                        line: file.line_of(off),
                        message: format!(
                            "float `as {target}` truncates toward zero and saturates; round \
                             explicitly (`.round()`/`.floor()`) before converting"
                        ),
                    });
                }
            }
            _ => {}
        }
    }
}

/// Index of the `)` matching the `(` at `open`.
fn matching_close(texts: &[&str], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in texts.iter().enumerate().skip(open) {
        match *t {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::classify;

    fn fired(path: &str, src: &str) -> Vec<&'static str> {
        let file = ScannedFile::new(path, src);
        let class = classify(path).unwrap();
        let mut out = Vec::new();
        check(&file, &class, &mut out);
        out.iter().map(|d| d.lint).collect()
    }

    #[test]
    fn float_eq_fires_on_literals_and_declared_floats() {
        let src = "fn f(omega: f64) -> bool { omega == 0.0 }\n";
        assert_eq!(fired("crates/linalg/src/x.rs", src), vec![lint::FLOAT_EQ]);

        let src =
            "fn f(n: usize, tol: f64) -> bool { let eps: f64 = 1e-9; n == 3 && tol != eps }\n";
        assert_eq!(fired("crates/linalg/src/x.rs", src), vec![lint::FLOAT_EQ]);
    }

    #[test]
    fn integer_comparisons_do_not_fire() {
        let src = "fn f(n: usize, m: usize) -> bool { n == m && n != 0 }\n";
        assert!(fired("crates/linalg/src/x.rs", src).is_empty());
    }

    #[test]
    fn partial_cmp_unwrap_fires_and_total_cmp_does_not() {
        let src = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        assert_eq!(fired("crates/core/src/x.rs", src), vec![lint::FLOAT_CMP_UNWRAP]);

        let src = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.total_cmp(b)); }\n";
        assert!(fired("crates/core/src/x.rs", src).is_empty());

        let src = "fn f(a: f64, b: f64) -> Option<std::cmp::Ordering> { a.partial_cmp(&b) }\n";
        assert!(fired("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn lossy_casts_fire_for_f32_and_float_to_int() {
        assert_eq!(
            fired("crates/nn/src/x.rs", "fn f(x: f64) -> f32 { x as f32 }\n"),
            vec![lint::FLOAT_AS_LOSSY]
        );
        assert_eq!(
            fired("crates/nn/src/x.rs", "fn f(x: f64) -> usize { x as usize }\n"),
            vec![lint::FLOAT_AS_LOSSY]
        );
        // Integer-to-integer casts are not this lint's business.
        assert!(fired("crates/nn/src/x.rs", "fn f(x: u64) -> usize { x as usize }\n").is_empty());
    }

    #[test]
    fn float_idents_are_scoped_to_their_function() {
        // `v: f64` in one helper must not make another function's `v`
        // (a u64 here) or `v.shape()` (a method result) float operands.
        let src = "fn push_f64(buf: &mut Vec<u8>, v: f64) { buf.push(v as u8); }\n\
                   fn read_count(v: u64) -> usize { v as usize }\n\
                   fn shapes_match(m: &M, v: &M) -> bool { m.shape() != v.shape() }\n";
        let fired_lints = fired("crates/core/src/x.rs", src);
        // The helper's own `v as u8` is a genuine float-to-int cast.
        assert_eq!(fired_lints, vec![lint::FLOAT_AS_LOSSY]);
    }

    #[test]
    fn scope_is_result_producing_library_code_only() {
        let eq = "fn f(x: f64) -> bool { x == 0.0 }\n";
        // telemetry is not a result-producing crate.
        assert!(fired("crates/telemetry/src/x.rs", eq).is_empty());
        // Test modules are exempt.
        let test_src = "#[cfg(test)]\nmod tests { fn t(x: f64) -> bool { x == 0.0 } }\n";
        assert!(fired("crates/linalg/src/x.rs", test_src).is_empty());
    }
}
