//! Item extraction: walks the token stream of a masked source file and
//! records every `fn`, `struct`, `trait`/`impl` method and `use`
//! declaration with its module path, visibility and `#[cfg(test)]`
//! status. This is the symbol table the call-graph builder resolves
//! against — deliberately conservative (no type inference, no macro
//! expansion), erring toward recording too much rather than too little.

use crate::lexer::{lex, Tok, TokKind};
use crate::scanner::ScannedFile;

/// One function (free or method) found in a file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Index of the owning file in the workspace file list.
    pub file: usize,
    /// Short crate name (`serve`, `linalg`, …).
    pub crate_name: String,
    /// Module path inside the crate (file modules + inline `mod`s).
    pub module: Vec<String>,
    /// `impl`/`trait` type the fn is a method of, if any.
    pub self_type: Option<String>,
    /// The function's name.
    pub name: String,
    /// Declared with bare `pub` (externally callable).
    pub is_pub: bool,
    /// Inside `#[cfg(test)]` / `#[test]` code.
    pub is_test: bool,
    /// Byte range of the body `{ … }` (inclusive of braces).
    pub body: (usize, usize),
    /// Byte range from the `fn` keyword to the body-opening brace.
    pub sig: (usize, usize),
    /// Return-type text (tokens after `->`, concatenated), empty if none.
    pub ret: String,
}

impl FnItem {
    /// `crate::module::Type::name` — the id used in reports and baselines.
    pub fn qualified(&self) -> String {
        let mut segs: Vec<&str> = vec![self.crate_name.as_str()];
        segs.extend(self.module.iter().map(String::as_str));
        if let Some(t) = &self.self_type {
            segs.push(t);
        }
        segs.push(&self.name);
        segs.join("::")
    }

    /// Path segments of [`Self::qualified`], for suffix matching.
    pub fn segments(&self) -> Vec<String> {
        let mut segs = vec![self.crate_name.clone()];
        segs.extend(self.module.iter().cloned());
        if let Some(t) = &self.self_type {
            segs.push(t.clone());
        }
        segs.push(self.name.clone());
        segs
    }
}

/// One struct and its named fields (tuple/unit structs record no fields).
#[derive(Debug, Clone)]
pub struct StructItem {
    pub file: usize,
    pub crate_name: String,
    pub module: Vec<String>,
    pub name: String,
    /// `(field name, concatenated type text)`, e.g. `("state", "Mutex<QueueState>")`.
    pub fields: Vec<(String, String)>,
}

/// One `use` binding: `local` becomes visible in `module` as `target`.
#[derive(Debug, Clone)]
pub struct UseEntry {
    pub crate_name: String,
    pub module: Vec<String>,
    /// The name introduced locally (`*` for glob imports).
    pub local: String,
    /// Full path segments of the imported item.
    pub target: Vec<String>,
}

/// Everything extracted from one file.
#[derive(Debug, Default)]
pub struct FileItems {
    pub fns: Vec<FnItem>,
    pub structs: Vec<StructItem>,
    pub uses: Vec<UseEntry>,
}

/// Derives the module path a file contributes from its workspace-relative
/// path: `crates/x/src/a/b.rs` → `["a", "b"]`, `…/a/mod.rs` → `["a"]`,
/// `src/lib.rs`/`src/main.rs` → `[]`.
pub fn file_module_path(path: &str) -> Vec<String> {
    let local = path
        .rsplit_once("/src/")
        .map(|(_, l)| l)
        .or_else(|| path.strip_prefix("src/"))
        .unwrap_or(path)
        .trim_end_matches(".rs");
    if local == "lib" || local == "main" || local.starts_with("bin/") {
        return Vec::new();
    }
    let mut segs: Vec<String> = local.split('/').map(str::to_string).collect();
    if segs.last().map(String::as_str) == Some("mod") {
        segs.pop();
    }
    segs
}

/// Keywords that look like calls when followed by `(`.
pub const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "else", "let", "in", "as", "move", "ref",
    "mut", "fn", "impl", "dyn", "where", "unsafe", "break", "continue", "await", "box",
];

/// Walks a scanned file and extracts its items.
pub fn extract(file: &ScannedFile, file_idx: usize, crate_name: &str) -> FileItems {
    let toks = lex(&file.masked);
    let mut out = FileItems::default();
    let mut walker = Walker {
        file,
        file_idx,
        crate_name,
        toks: &toks,
        module: file_module_path(&file.path),
        out: &mut out,
    };
    let mut pos = 0;
    walker.items(&mut pos, usize::MAX, None);
    out
}

struct Walker<'a> {
    file: &'a ScannedFile,
    file_idx: usize,
    crate_name: &'a str,
    toks: &'a [Tok],
    module: Vec<String>,
    out: &'a mut FileItems,
}

impl Walker<'_> {
    fn text(&self, i: usize) -> &str {
        self.toks[i].text(&self.file.masked)
    }

    /// Parses items until `end_tok` (exclusive) or a closing `}` at this
    /// nesting level. `self_type` is the enclosing `impl`/`trait` type.
    fn items(&mut self, pos: &mut usize, end_tok: usize, self_type: Option<&str>) {
        let mut pending_pub = false;
        while *pos < self.toks.len().min(end_tok) {
            let i = *pos;
            match (self.toks[i].kind, self.text(i)) {
                (TokKind::Punct, "#") => {
                    *pos = self.skip_attribute(i);
                    continue; // attributes do not reset a pending `pub`
                }
                (TokKind::Ident, "pub") => {
                    *pos += 1;
                    if self.peek_text(*pos) == Some("(") {
                        // `pub(crate)` / `pub(super)`: not externally public.
                        *pos = self.skip_balanced(*pos, "(", ")");
                    } else {
                        pending_pub = true;
                        continue;
                    }
                    continue;
                }
                (TokKind::Ident, "fn") => {
                    *pos = self.parse_fn(i, pending_pub, self_type);
                }
                (TokKind::Ident, "mod") => {
                    *pos = self.parse_mod(i, self_type);
                }
                (TokKind::Ident, "struct") => {
                    *pos = self.parse_struct(i);
                }
                (TokKind::Ident, "impl") => {
                    *pos = self.parse_impl_or_trait(i, false);
                }
                (TokKind::Ident, "trait") => {
                    *pos = self.parse_impl_or_trait(i, true);
                }
                (TokKind::Ident, "use") => {
                    *pos = self.parse_use(i);
                }
                (TokKind::Ident, "enum" | "union") => {
                    *pos = self.skip_to_block_or_semi(i + 1);
                }
                (TokKind::Ident, "unsafe" | "async" | "extern") => {
                    // Fn qualifiers: step over, keeping any pending `pub`.
                    *pos += 1;
                    continue;
                }
                (TokKind::Ident, "const")
                    if matches!(
                        self.peek_text(i + 1),
                        Some("fn" | "unsafe" | "async" | "extern")
                    ) =>
                {
                    *pos += 1; // `const fn`: a qualifier, not a const item
                    continue;
                }
                (TokKind::Ident, "const" | "static" | "type") => {
                    *pos = self.skip_statement(i + 1);
                }
                (TokKind::Ident, "macro_rules") => {
                    *pos = self.skip_to_block_or_semi(i + 1);
                }
                (TokKind::Punct, "{") => {
                    // An unexpected block at item level (e.g. `extern {}`):
                    // skip it wholesale.
                    *pos = self.skip_balanced(i, "{", "}");
                }
                (TokKind::Punct, "}") => {
                    *pos += 1;
                    return; // end of the enclosing block
                }
                _ => *pos += 1,
            }
            pending_pub = false;
        }
    }

    fn peek_text(&self, i: usize) -> Option<&str> {
        (i < self.toks.len()).then(|| self.text(i))
    }

    /// `#` `[` … `]` (and `#![…]`): returns the index after the attribute.
    fn skip_attribute(&self, i: usize) -> usize {
        let mut j = i + 1;
        if self.peek_text(j) == Some("!") {
            j += 1;
        }
        if self.peek_text(j) == Some("[") {
            return self.skip_balanced(j, "[", "]");
        }
        i + 1
    }

    /// From an opening delimiter at `i`, returns the index after its match.
    fn skip_balanced(&self, i: usize, open: &str, close: &str) -> usize {
        let mut depth = 0usize;
        let mut j = i;
        while j < self.toks.len() {
            let t = self.text(j);
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        self.toks.len()
    }

    /// Skips to just past the terminating `;`, stepping over any balanced
    /// `{}`/`()`/`[]` groups on the way (const/static initializers).
    fn skip_statement(&self, mut j: usize) -> usize {
        while j < self.toks.len() {
            match self.text(j) {
                ";" => return j + 1,
                "{" => j = self.skip_balanced(j, "{", "}"),
                "(" => j = self.skip_balanced(j, "(", ")"),
                "[" => j = self.skip_balanced(j, "[", "]"),
                "}" => return j, // ill-formed; stop at enclosing close
                _ => j += 1,
            }
        }
        j
    }

    /// Skips to past the first top-level `{…}` block or `;`.
    fn skip_to_block_or_semi(&self, mut j: usize) -> usize {
        while j < self.toks.len() {
            match self.text(j) {
                "{" => return self.skip_balanced(j, "{", "}"),
                ";" => return j + 1,
                "(" => j = self.skip_balanced(j, "(", ")"),
                "[" => j = self.skip_balanced(j, "[", "]"),
                _ => j += 1,
            }
        }
        j
    }

    /// Parses `fn name … { body }`, recording the item; returns the index
    /// after the body (or the `;` of a bodyless trait signature).
    fn parse_fn(&mut self, i: usize, is_pub: bool, self_type: Option<&str>) -> usize {
        let name_idx = i + 1;
        let Some(name) =
            self.peek_text(name_idx).filter(|_| self.toks[name_idx].kind == TokKind::Ident)
        else {
            return i + 1; // `fn(` pointer type or malformed — not an item
        };
        let name = name.to_string();
        // Find the body `{` or terminating `;`, tracking angle depth so a
        // `{` inside const generics cannot fool us. `->` return types are
        // captured on the way.
        let mut j = name_idx + 1;
        let mut angle = 0i32;
        let mut ret = String::new();
        let mut in_ret = false;
        let mut body_open = None;
        while j < self.toks.len() {
            let t = self.text(j);
            match t {
                "<" => angle += 1,
                ">" => angle = (angle - 1).max(0),
                "->" => in_ret = true,
                "where" => in_ret = false,
                "(" => {
                    // Parameter list or a parenthesized type: step over it
                    // but keep it in the return text when applicable.
                    let end = self.skip_balanced(j, "(", ")");
                    if in_ret {
                        for k in j..end.min(self.toks.len()) {
                            ret.push_str(self.text(k));
                        }
                    }
                    j = end;
                    continue;
                }
                "{" if angle == 0 => {
                    body_open = Some(j);
                    break;
                }
                ";" if angle == 0 => {
                    return j + 1; // bodyless trait method
                }
                _ => {
                    if in_ret {
                        ret.push_str(t);
                    }
                }
            }
            j += 1;
        }
        let Some(open) = body_open else { return self.toks.len() };
        let after = self.skip_balanced(open, "{", "}");
        let body_end = if after > 0 && after <= self.toks.len() {
            self.toks[after - 1].end
        } else {
            self.file.masked.len()
        };
        self.out.fns.push(FnItem {
            file: self.file_idx,
            crate_name: self.crate_name.to_string(),
            module: self.module.clone(),
            self_type: self_type.map(str::to_string),
            name,
            is_pub,
            is_test: self.file.in_test_code(self.toks[i].start),
            body: (self.toks[open].start, body_end),
            sig: (self.toks[i].start, self.toks[open].start),
            ret,
        });
        after
    }

    /// `mod name { … }` (recursing with the name pushed) or `mod name;`.
    fn parse_mod(&mut self, i: usize, self_type: Option<&str>) -> usize {
        let name_idx = i + 1;
        let Some(name) = self.peek_text(name_idx) else { return i + 1 };
        let name = name.to_string();
        let mut j = name_idx + 1;
        while j < self.toks.len() {
            match self.text(j) {
                ";" => return j + 1,
                "{" => {
                    self.module.push(name);
                    let mut pos = j + 1;
                    self.items(&mut pos, usize::MAX, self_type);
                    self.module.pop();
                    return pos;
                }
                _ => j += 1,
            }
        }
        j
    }

    /// `struct Name { fields }` / `struct Name(…);` / `struct Name;`.
    fn parse_struct(&mut self, i: usize) -> usize {
        let name_idx = i + 1;
        let Some(name) = self.peek_text(name_idx) else { return i + 1 };
        let name = name.to_string();
        let mut j = name_idx + 1;
        let mut angle = 0i32;
        while j < self.toks.len() {
            match self.text(j) {
                "<" => angle += 1,
                ">" => angle = (angle - 1).max(0),
                ";" if angle == 0 => {
                    self.push_struct(name, Vec::new());
                    return j + 1;
                }
                "(" => {
                    let end = self.skip_balanced(j, "(", ")");
                    // Tuple struct: `struct X(A, B);` — no named fields.
                    let after = self.skip_statement(end);
                    self.push_struct(name, Vec::new());
                    return after;
                }
                "{" if angle == 0 => {
                    let end = self.skip_balanced(j, "{", "}");
                    let fields = self.parse_fields(j + 1, end.saturating_sub(1));
                    self.push_struct(name, fields);
                    return end;
                }
                _ => {}
            }
            j += 1;
        }
        j
    }

    fn push_struct(&mut self, name: String, fields: Vec<(String, String)>) {
        self.out.structs.push(StructItem {
            file: self.file_idx,
            crate_name: self.crate_name.to_string(),
            module: self.module.clone(),
            name,
            fields,
        });
    }

    /// Parses `name: Type` fields between token indices `[from, to)`,
    /// splitting on top-level commas.
    fn parse_fields(&self, from: usize, to: usize) -> Vec<(String, String)> {
        let mut fields = Vec::new();
        let mut j = from;
        while j < to {
            // Skip attributes and visibility on the field.
            while j < to && self.text(j) == "#" {
                j = self.skip_attribute(j);
            }
            if j < to && self.text(j) == "pub" {
                j += 1;
                if j < to && self.text(j) == "(" {
                    j = self.skip_balanced(j, "(", ")");
                }
            }
            if j >= to || self.toks[j].kind != TokKind::Ident {
                break;
            }
            let fname = self.text(j).to_string();
            if self.peek_text(j + 1) != Some(":") {
                break;
            }
            j += 2;
            let mut depth = 0i32;
            let mut ty = String::new();
            while j < to {
                let t = self.text(j);
                match t {
                    "<" | "(" | "[" => depth += 1,
                    ">" | ")" | "]" => depth -= 1,
                    "," if depth == 0 => break,
                    _ => {}
                }
                ty.push_str(t);
                j += 1;
            }
            fields.push((fname, ty));
            j += 1; // past the comma
        }
        fields
    }

    /// `impl [<…>] [Trait for] Type [where …] { items }` or
    /// `trait Name { items }`: recurses into the body with the type name
    /// as `self_type`.
    fn parse_impl_or_trait(&mut self, i: usize, is_trait: bool) -> usize {
        let mut j = i + 1;
        let mut angle = 0i32;
        let mut last_ident: Option<String> = None;
        let mut after_for: Option<String> = None;
        let mut saw_for = false;
        while j < self.toks.len() {
            let t = self.text(j);
            match t {
                "<" => angle += 1,
                ">" => angle = (angle - 1).max(0),
                "for" if angle == 0 => saw_for = true,
                "where" if angle == 0 => {
                    // The where clause may mention many idents; the type
                    // name is already settled.
                    j = self.skip_where(j);
                    continue;
                }
                "{" if angle == 0 => {
                    let ty = after_for.or(last_ident);
                    let mut pos = j + 1;
                    self.items(&mut pos, usize::MAX, ty.as_deref());
                    return pos;
                }
                ";" if angle == 0 => return j + 1, // `impl Trait for Type;`-ish
                "(" => {
                    j = self.skip_balanced(j, "(", ")");
                    continue;
                }
                _ => {
                    if self.toks[j].kind == TokKind::Ident && angle == 0 && !is_keyword(t) {
                        if saw_for {
                            after_for = Some(t.to_string());
                        } else {
                            last_ident = Some(t.to_string());
                        }
                    }
                }
            }
            j += 1;
        }
        let _ = is_trait;
        j
    }

    /// Skips a `where` clause up to (not past) the opening `{`.
    fn skip_where(&self, mut j: usize) -> usize {
        let mut angle = 0i32;
        while j < self.toks.len() {
            match self.text(j) {
                "<" => angle += 1,
                ">" => angle = (angle - 1).max(0),
                "{" if angle == 0 => return j,
                "(" => {
                    j = self.skip_balanced(j, "(", ")");
                    continue;
                }
                _ => {}
            }
            j += 1;
        }
        j
    }

    /// `use a::b::{c, d as e, *};` — flattens into [`UseEntry`]s.
    fn parse_use(&mut self, i: usize) -> usize {
        let end = self.skip_statement(i + 1);
        self.collect_use(i + 1, end.saturating_sub(1), &mut Vec::new());
        end
    }

    fn collect_use(&mut self, from: usize, to: usize, prefix: &mut Vec<String>) {
        let mut j = from;
        let base_len = prefix.len();
        let mut last: Option<String> = None;
        while j < to {
            let t = self.text(j);
            match t {
                "::" => {
                    if let Some(seg) = last.take() {
                        prefix.push(seg);
                    }
                }
                "{" => {
                    // Group: recurse per comma-separated arm.
                    let group_end = self.skip_balanced(j, "{", "}") - 1;
                    let mut arm_start = j + 1;
                    let mut depth = 0i32;
                    let mut k = j + 1;
                    while k <= group_end {
                        let tt = self.text(k);
                        match tt {
                            "{" => depth += 1,
                            "}" if depth > 0 => depth -= 1,
                            "," if depth == 0 => {
                                self.collect_use(arm_start, k, prefix);
                                arm_start = k + 1;
                            }
                            "}" => {
                                self.collect_use(arm_start, k, prefix);
                                arm_start = k + 1;
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    prefix.truncate(base_len);
                    return;
                }
                "*" => {
                    self.push_use("*".to_string(), prefix.clone());
                    prefix.truncate(base_len);
                    return;
                }
                "as" => {
                    // `path as alias`: the alias is the local name.
                    let target_name = last.take();
                    let alias = self.peek_text(j + 1).unwrap_or("_").to_string();
                    let mut target = prefix.clone();
                    if let Some(n) = target_name {
                        target.push(n);
                    }
                    self.push_use_with_target(alias, target);
                    prefix.truncate(base_len);
                    return;
                }
                _ if self.toks[j].kind == TokKind::Ident => {
                    last = Some(t.to_string());
                }
                _ => {}
            }
            j += 1;
        }
        if let Some(seg) = last {
            let mut target = prefix.clone();
            target.push(seg.clone());
            self.push_use_with_target(seg, target);
        }
        prefix.truncate(base_len);
    }

    fn push_use(&mut self, local: String, target: Vec<String>) {
        self.push_use_with_target(local, target);
    }

    fn push_use_with_target(&mut self, local: String, target: Vec<String>) {
        self.out.uses.push(UseEntry {
            crate_name: self.crate_name.to_string(),
            module: self.module.clone(),
            local,
            target,
        });
    }
}

fn is_keyword(t: &str) -> bool {
    matches!(
        t,
        "for"
            | "where"
            | "impl"
            | "dyn"
            | "pub"
            | "unsafe"
            | "const"
            | "mut"
            | "crate"
            | "self"
            | "super"
            | "as"
            | "in"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extract_src(path: &str, src: &str) -> FileItems {
        let file = ScannedFile::new(path, src);
        extract(&file, 0, "demo")
    }

    #[test]
    fn file_module_paths() {
        assert!(file_module_path("crates/serve/src/lib.rs").is_empty());
        assert_eq!(file_module_path("crates/serve/src/frontend.rs"), vec!["frontend"]);
        assert_eq!(file_module_path("crates/fdm/src/solver/mod.rs"), vec!["solver"]);
        assert_eq!(file_module_path("crates/fdm/src/solver/cg.rs"), vec!["solver", "cg"]);
        assert!(file_module_path("src/main.rs").is_empty());
        assert!(file_module_path("crates/bench/src/bin/table1.rs").is_empty());
    }

    #[test]
    fn extracts_free_fns_with_visibility() {
        let items = extract_src(
            "crates/demo/src/lib.rs",
            "pub fn a() { b(); }\nfn b() {}\npub(crate) fn c() {}\n",
        );
        let names: Vec<_> = items.fns.iter().map(|f| (f.name.as_str(), f.is_pub)).collect();
        assert_eq!(names, vec![("a", true), ("b", false), ("c", false)]);
        assert_eq!(items.fns[0].qualified(), "demo::a");
    }

    #[test]
    fn extracts_methods_with_impl_type() {
        let src = "struct Pool { q: u32 }\nimpl Pool {\n pub fn new() -> Self { Pool { q: 0 } }\n fn run(&self) {}\n}\nimpl Drop for Pool { fn drop(&mut self) {} }\n";
        let items = extract_src("crates/demo/src/pool.rs", src);
        let q: Vec<_> = items.fns.iter().map(FnItem::qualified).collect();
        assert_eq!(
            q,
            vec!["demo::pool::Pool::new", "demo::pool::Pool::run", "demo::pool::Pool::drop"]
        );
        assert!(items.fns[0].is_pub);
        assert!(items.fns[0].ret.contains("Self"));
    }

    #[test]
    fn extracts_struct_fields_with_types() {
        let src = "pub struct Queue { state: Mutex<QueueState>, ready: Condvar, n: usize }\nstruct Unit;\nstruct Tup(u32);\n";
        let items = extract_src("crates/demo/src/lib.rs", src);
        assert_eq!(items.structs.len(), 3);
        let q = &items.structs[0];
        assert_eq!(q.fields[0], ("state".to_string(), "Mutex<QueueState>".to_string()));
        assert_eq!(q.fields[1], ("ready".to_string(), "Condvar".to_string()));
        assert_eq!(q.fields[2].0, "n");
    }

    #[test]
    fn inline_modules_nest_paths() {
        let src = "mod inner { pub fn deep() {} mod deeper { fn deepest() {} } }\n";
        let items = extract_src("crates/demo/src/lib.rs", src);
        let q: Vec<_> = items.fns.iter().map(FnItem::qualified).collect();
        assert_eq!(q, vec!["demo::inner::deep", "demo::inner::deeper::deepest"]);
    }

    #[test]
    fn cfg_test_functions_are_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n #[test]\n fn t() {}\n}\n";
        let items = extract_src("crates/demo/src/lib.rs", src);
        assert_eq!(items.fns.len(), 2);
        assert!(!items.fns[0].is_test);
        assert!(items.fns[1].is_test);
    }

    #[test]
    fn use_declarations_flatten_groups_aliases_and_globs() {
        let src = "use std::sync::{Arc, Mutex as Mu};\nuse crate::frontend::submit;\nuse super::helpers::*;\n";
        let items = extract_src("crates/demo/src/lib.rs", src);
        let m: Vec<_> =
            items.uses.iter().map(|u| (u.local.as_str(), u.target.join("::"))).collect();
        assert!(m.contains(&("Arc", "std::sync::Arc".to_string())), "{m:?}");
        assert!(m.contains(&("Mu", "std::sync::Mutex".to_string())), "{m:?}");
        assert!(m.contains(&("submit", "crate::frontend::submit".to_string())), "{m:?}");
        assert!(m.contains(&("*", "super::helpers".to_string())), "{m:?}");
    }

    #[test]
    fn return_types_are_recorded() {
        let src = "impl Q { fn lock(&self) -> MutexGuard<'_, Inner<T>> { self.inner.lock() } }\nfn free() -> Result<u32, String> { Ok(1) }\n";
        let items = extract_src("crates/demo/src/lib.rs", src);
        assert!(items.fns[0].ret.contains("MutexGuard"), "{}", items.fns[0].ret);
        assert!(items.fns[1].ret.contains("Result"), "{}", items.fns[1].ret);
    }

    #[test]
    fn impl_headers_with_generics_and_where_clauses() {
        let src = "impl<T: Clone> Holder<T> where T: Send { fn get(&self) {} }\nimpl Iterator for ChunkIter<'_> { fn next(&mut self) -> Option<u32> { None } }\n";
        let items = extract_src("crates/demo/src/lib.rs", src);
        let q: Vec<_> = items.fns.iter().map(FnItem::qualified).collect();
        assert_eq!(q, vec!["demo::Holder::get", "demo::ChunkIter::next"]);
    }

    #[test]
    fn trait_default_methods_are_recorded_and_signatures_skipped() {
        let src =
            "pub trait Trainable { fn step(&mut self);\n fn run(&mut self) { self.step(); } }\n";
        let items = extract_src("crates/demo/src/lib.rs", src);
        let q: Vec<_> = items.fns.iter().map(FnItem::qualified).collect();
        assert_eq!(q, vec!["demo::Trainable::run"]);
    }
}
