//! A minimal, dependency-free JSON reader for the benchcheck subcommand.
//!
//! The xtask crate is deliberately dependency-free (see its manifest), so
//! this module hand-rolls the small subset of JSON the bench manifests
//! and the committed baseline need: objects, arrays, strings with the
//! standard escapes, `f64` numbers, booleans, and `null`. Object key
//! order is preserved (entries are a `Vec`, not a map) so re-emitted
//! baselines diff cleanly.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key of an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Walks a `.`-free key path through nested objects.
    pub fn get_path(&self, path: &[&str]) -> Option<&Json> {
        path.iter().try_fold(self, |v, key| v.get(key))
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure with a byte offset for context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where it was detected.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (rejecting trailing garbage).
///
/// # Errors
///
/// Returns a [`JsonError`] describing the first malformed construct.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not expected in bench
                            // manifests; map them to the replacement char
                            // rather than failing the whole parse.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'"' || c == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError { message: format!("invalid number `{text}`"), offset: start })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_bench_manifest_shape() {
        let doc = r#"{"name":"serve","metrics":{"gauges":{"serve.points":4096.0,
            "serve.speedup_warm_vs_naive":5.33},"counters":{"serve.cache.hits":27}}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("name").and_then(Json::as_str), Some("serve"));
        let speedup = v
            .get_path(&["metrics", "gauges", "serve.speedup_warm_vs_naive"])
            .and_then(Json::as_f64)
            .unwrap();
        assert!((speedup - 5.33).abs() < 1e-12);
        assert_eq!(
            v.get_path(&["metrics", "counters", "serve.cache.hits"]).and_then(Json::as_f64),
            Some(27.0)
        );
    }

    #[test]
    fn parses_arrays_escapes_and_literals() {
        let v = parse(r#"[true, false, null, -1.5e3, "a\"b\nA"]"#).unwrap();
        let items = v.as_arr().unwrap();
        assert_eq!(items[0], Json::Bool(true));
        assert_eq!(items[1], Json::Bool(false));
        assert_eq!(items[2], Json::Null);
        assert_eq!(items[3], Json::Num(-1500.0));
        assert_eq!(items[4], Json::Str("a\"b\nA".to_string()));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "tru", "\"unterminated", "{}extra", "1..2"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn preserves_object_order() {
        let v = parse(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        match v {
            Json::Obj(entries) => {
                let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, ["z", "a", "m"]);
            }
            _ => panic!("expected object"),
        }
    }
}
