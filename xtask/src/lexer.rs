//! A token-level lexer over **masked** Rust source (see [`crate::scanner`]).
//!
//! The masking scanner already erased comment and literal bodies, so the
//! lexer only has to split the remaining code into identifiers, numbers,
//! lifetimes and punctuation — enough for the item extractor and
//! call-graph builder to walk real syntax instead of regex-matching it.
//! Offsets are byte offsets into the original file (masking preserves
//! length), so every token can be mapped back to a line number.

/// Token classes the downstream passes distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `Mutex`, `r#match` minus the `r#`).
    Ident,
    /// Numeric literal (`3`, `0.5e-3`, `0xff`, `1_000f64`).
    Number,
    /// Lifetime (`'a`, `'_`) — char literals were masked away.
    Lifetime,
    /// Punctuation, possibly multi-byte (`::`, `->`, `==`, `..=`).
    Punct,
}

/// One token: kind plus byte span in the (masked) source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub start: usize,
    pub end: usize,
}

impl Tok {
    /// The token's text, sliced out of the masked source it was lexed from.
    pub fn text<'a>(&self, masked: &'a [u8]) -> &'a str {
        std::str::from_utf8(&masked[self.start..self.end]).unwrap_or("")
    }
}

/// Multi-byte punctuation, longest-first so prefixes never shadow. `<<`
/// and `>>` are deliberately absent: splitting shifts into two tokens lets
/// generic-argument scanners treat every `<`/`>` individually.
const MULTI_PUNCT: &[&str] = &[
    "..=", "<<=", ">>=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "..", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=",
];

/// Lexes masked source into tokens. Whitespace (including every masked
/// literal/comment byte) separates tokens and is never part of one.
pub fn lex(masked: &[u8]) -> Vec<Tok> {
    let mut toks = Vec::new();
    let mut i = 0;
    while i < masked.len() {
        let b = masked[i];
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if b == b'r'
            && masked.get(i + 1) == Some(&b'#')
            && masked.get(i + 2).is_some_and(|&c| is_ident_start(c))
        {
            // Raw identifier `r#type`: token text is the bare name.
            let start = i + 2;
            let end = ident_end(masked, start);
            toks.push(Tok { kind: TokKind::Ident, start, end });
            i = end;
        } else if is_ident_start(b) {
            let end = ident_end(masked, i);
            toks.push(Tok { kind: TokKind::Ident, start: i, end });
            i = end;
        } else if b.is_ascii_digit() {
            let end = number_end(masked, i);
            toks.push(Tok { kind: TokKind::Number, start: i, end });
            i = end;
        } else if b == b'\'' {
            // Char-literal quotes were masked to spaces, so a surviving
            // `'` opens a lifetime.
            let end = ident_end(masked, i + 1);
            toks.push(Tok { kind: TokKind::Lifetime, start: i, end });
            i = end.max(i + 1);
        } else {
            let mut len = 1;
            for p in MULTI_PUNCT {
                if masked[i..].starts_with(p.as_bytes()) {
                    len = p.len();
                    break;
                }
            }
            toks.push(Tok { kind: TokKind::Punct, start: i, end: i + len });
            i += len;
        }
    }
    toks
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn ident_end(masked: &[u8], start: usize) -> usize {
    let mut i = start;
    while i < masked.len() && is_ident_byte(masked[i]) {
        i += 1;
    }
    i
}

/// Scans a numeric literal: digits/underscores/type suffixes, a decimal
/// point only when a digit follows (so `0.0..2.0` splits before `..`),
/// and exponent signs (`1e-3`).
fn number_end(masked: &[u8], start: usize) -> usize {
    let mut i = start;
    while i < masked.len() {
        let b = masked[i];
        if is_ident_byte(b) {
            if (b == b'e' || b == b'E')
                && !masked[start..].starts_with(b"0x")
                && matches!(masked.get(i + 1), Some(&b'+') | Some(&b'-'))
                && masked.get(i + 2).is_some_and(u8::is_ascii_digit)
            {
                i += 2; // consume the exponent sign along with `e`
            }
            i += 1;
        } else if b == b'.' && masked.get(i + 1).is_some_and(u8::is_ascii_digit) {
            i += 1;
        } else {
            break;
        }
    }
    i
}

/// Whether a [`TokKind::Number`] token is a floating-point literal: it
/// contains a decimal point, a (non-hex) exponent, or an `f32`/`f64`
/// suffix.
pub fn is_float_literal(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0b") || text.starts_with("0o") {
        return false;
    }
    text.contains('.')
        || text.ends_with("f32")
        || text.ends_with("f64")
        || text.bytes().any(|b| b == b'e' || b == b'E')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::mask_source;

    fn texts(src: &str) -> Vec<String> {
        let masked = mask_source(src.as_bytes());
        lex(&masked).iter().map(|t| t.text(&masked).to_string()).collect()
    }

    #[test]
    fn splits_identifiers_paths_and_calls() {
        let t = texts("fn f() { self.queue.state.lock() }");
        assert_eq!(
            t,
            vec![
                "fn", "f", "(", ")", "{", "self", ".", "queue", ".", "state", ".", "lock", "(",
                ")", "}"
            ]
        );
    }

    #[test]
    fn multi_byte_punctuation_is_one_token() {
        let t = texts("a::b -> c == d != e && f ..= g");
        assert!(t.contains(&"::".to_string()));
        assert!(t.contains(&"->".to_string()));
        assert!(t.contains(&"==".to_string()));
        assert!(t.contains(&"!=".to_string()));
        assert!(t.contains(&"..=".to_string()));
    }

    #[test]
    fn float_ranges_split_before_dotdot() {
        let t = texts("(0.0..2.0).contains(&omega)");
        assert!(t.contains(&"0.0".to_string()));
        assert!(t.contains(&"..".to_string()));
        assert!(t.contains(&"2.0".to_string()));
    }

    #[test]
    fn exponents_and_suffixes_stay_in_one_number() {
        let t = texts("let x = 1.5e-3 + 2f64 + 0xff;");
        assert!(t.contains(&"1.5e-3".to_string()), "{t:?}");
        assert!(t.contains(&"2f64".to_string()));
        assert!(t.contains(&"0xff".to_string()));
    }

    #[test]
    fn float_literal_classification() {
        assert!(is_float_literal("1.0"));
        assert!(is_float_literal("1e9"));
        assert!(is_float_literal("2f64"));
        assert!(is_float_literal("3f32"));
        assert!(!is_float_literal("3"));
        assert!(!is_float_literal("0xfe"));
        assert!(!is_float_literal("1_000"));
    }

    #[test]
    fn lifetimes_and_raw_idents() {
        let t = texts("fn f<'a>(x: &'a r#type) {}");
        assert!(t.contains(&"'a".to_string()));
        assert!(t.contains(&"type".to_string()), "{t:?}");
    }

    #[test]
    fn masked_strings_produce_no_tokens() {
        let t = texts(r#"call("unwrap() inside a string")"#);
        assert_eq!(t, vec!["call", "(", ")"]);
    }

    #[test]
    fn shifts_split_into_single_angles() {
        let t = texts("Vec<Vec<u8>>");
        assert_eq!(t.iter().filter(|s| s.as_str() == ">").count(), 2);
    }
}
