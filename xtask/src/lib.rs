#![deny(unsafe_code)]
//! Project-invariant static analysis for the DeepOHeat workspace.
//!
//! `cargo xtask lint` machine-checks the promises the docs make
//! (PERFORMANCE.md's bitwise determinism, RESILIENCE.md's bit-identical
//! resume) instead of leaving them to reviewer vigilance:
//!
//! * **determinism** — wall clocks outside telemetry/bench, `thread::spawn`
//!   outside the deterministic pool, hash-order-sensitive containers in
//!   result-producing crates;
//! * **panic-freedom** — a per-file ratchet over panic-capable call sites
//!   in the solver/NN library crates (`xtask/panic-baseline.txt`);
//! * **unsafe audit** — `#![deny(unsafe_code)]` on every crate root
//!   outside `deepoheat-parallel`, and a `// SAFETY:` justification on
//!   every unsafe site inside it (`--unsafe-report` prints the inventory).
//!
//! Exceptions live in `xtask/lint-allow.txt`, one justification per line.
//! See STATIC_ANALYSIS.md for the workflow.
//!
//! `cargo xtask benchcheck` is the CI perf-regression gate: it compares
//! fresh `BENCH_*.json` manifests against the committed
//! `xtask/bench-baseline.json` within per-gauge tolerance bands (see the
//! [`benchcheck`] module).
//!
//! `cargo xtask metrics-doc` keeps TELEMETRY.md's metric tables in sync
//! with the names the code actually emits (see the [`metricsdoc`]
//! module).

pub mod allowlist;
pub mod baseline;
pub mod benchcheck;
pub mod callgraph;
pub mod floatlint;
pub mod items;
pub mod json;
pub mod lexer;
pub mod lints;
pub mod locks;
pub mod metricsdoc;
pub mod reach;
pub mod report;
pub mod scanner;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use lints::{Diagnostic, FileKind, PanicSite, UnsafeSite, PANIC_LINT_CRATES};
use scanner::ScannedFile;

/// Relative path of the allowlist file.
pub const ALLOWLIST_PATH: &str = "xtask/lint-allow.txt";
/// Relative path of the panic-freedom ratchet file.
pub const BASELINE_PATH: &str = "xtask/panic-baseline.txt";
/// Relative path of the panic-reachability ratchet file.
pub const REACH_BASELINE_PATH: &str = "xtask/panic-reach-baseline.txt";
/// Where `cargo xtask lint` writes the machine-readable report.
pub const REPORT_PATH: &str = "target/analysis-report.json";

/// Directory names never descended into during the workspace walk.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", ".cargo"];

/// Everything one lint run produced.
#[derive(Debug, Default)]
pub struct LintOutcome {
    /// Findings that fail the run (after allowlisting and the ratchet).
    pub violations: Vec<Diagnostic>,
    /// Findings suppressed by the allowlist (for `--verbose` output).
    pub suppressed: Vec<Diagnostic>,
    /// Per-file panic-capable sites in ratcheted crates.
    pub panic_sites: BTreeMap<String, Vec<PanicSite>>,
    /// Every unsafe site in the audited crate, documented or not.
    pub unsafe_inventory: Vec<UnsafeSite>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Functions in the call graph (library code of classified crates).
    pub functions: usize,
    /// Resolved call edges in the graph.
    pub call_edges: usize,
    /// Per-entry-point panic-reachability verdicts.
    pub reach: reach::ReachReport,
    /// The lock-order graph and any cycles.
    pub locks: locks::LockReport,
}

impl LintOutcome {
    /// Whether the run passed.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Lints a set of already-loaded sources against the given allowlist and
/// baseline texts. This is the pure core `cargo xtask lint` wraps — tests
/// feed it fixture snippets directly.
///
/// # Errors
///
/// Returns a message for malformed allowlist/baseline input.
pub fn lint_sources(
    sources: &[(String, String)],
    allowlist_text: &str,
    baseline_text: &str,
    reach_baseline_text: &str,
) -> Result<LintOutcome, String> {
    let allow = allowlist::parse(allowlist_text)?;
    let base = baseline::parse(baseline_text)?;
    let reach_base = reach::parse_baseline(reach_baseline_text)?;

    let mut raw_diags = Vec::new();
    let mut outcome = LintOutcome::default();
    let mut lib_files = Vec::new();
    let mut lib_classes = Vec::new();
    for (path, text) in sources {
        let Some(class) = lints::classify(path) else { continue };
        let file = ScannedFile::new(path.clone(), text.clone());
        outcome.files_scanned += 1;
        lints::check_determinism(&file, &class, &mut raw_diags);
        lints::check_unsafe(&file, &class, &mut raw_diags);
        floatlint::check(&file, &class, &mut raw_diags);
        if class.kind == FileKind::Library && PANIC_LINT_CRATES.contains(&class.crate_name.as_str())
        {
            let sites = lints::count_panic_sites(&file);
            if !sites.is_empty() {
                outcome.panic_sites.insert(path.clone(), sites);
            }
        }
        if lints::UNSAFE_EXEMPT_CRATES.contains(&class.crate_name.as_str())
            || lints::UNSAFE_AUDITED_PATHS.contains(&file.path.as_str())
        {
            outcome.unsafe_inventory.extend(lints::unsafe_sites(&file));
        }
        if class.kind == FileKind::Library {
            lib_files.push(file);
            lib_classes.push(class);
        }
    }

    // The workspace analyses: call graph, panic reachability, lock order.
    let ws = callgraph::Workspace::build(lib_files, lib_classes);
    outcome.functions = ws.fns.len();
    outcome.call_edges = ws.edge_count();
    outcome.reach = reach::analyze(&ws);
    outcome.locks = locks::analyze(&ws, &mut raw_diags);

    let (mut kept, suppressed) = allowlist::apply(raw_diags, &allow);
    // Ratchet diagnostics bypass the allowlist: baselines are the only
    // sanctioned exception mechanism for them.
    kept.extend(baseline::check(&outcome.panic_sites, &base));
    kept.extend(reach::check(&outcome.reach, &reach_base));
    kept.sort_by(|a, b| (a.path.as_str(), a.line, a.lint).cmp(&(b.path.as_str(), b.line, b.lint)));
    outcome.violations = kept;
    outcome.suppressed = suppressed;
    Ok(outcome)
}

/// Collects every workspace `.rs` file (workspace-relative path + text),
/// skipping `target/`, `vendor/`, VCS metadata and the deliberately
/// violating fixture snippets under `xtask/tests/fixtures/`.
///
/// # Errors
///
/// Propagates I/O failures with the offending path.
pub fn collect_sources(root: &Path) -> Result<Vec<(String, String)>, String> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort();
    let mut out = Vec::with_capacity(files.len());
    for rel in files {
        let text =
            std::fs::read_to_string(root.join(&rel)).map_err(|e| format!("read {rel}: {e}"))?;
        out.push((rel, text));
    }
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            let rel = relative(root, &path);
            if rel == "xtask/tests/fixtures" {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(relative(root, &path));
        }
    }
    Ok(())
}

fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/")
}

/// Locates the workspace root: the parent of xtask's own manifest dir.
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().map_or(manifest.clone(), Path::to_path_buf)
}

/// Runs the full workspace lint, reading allowlist and baseline from disk
/// (both optional: missing files behave as empty).
///
/// # Errors
///
/// Returns a message for I/O failures or malformed config files.
pub fn run_workspace_lint(root: &Path) -> Result<LintOutcome, String> {
    let sources = collect_sources(root)?;
    let allow_text = read_optional(&root.join(ALLOWLIST_PATH))?;
    let baseline_text = read_optional(&root.join(BASELINE_PATH))?;
    let reach_baseline_text = read_optional(&root.join(REACH_BASELINE_PATH))?;
    lint_sources(&sources, &allow_text, &baseline_text, &reach_baseline_text)
}

/// Rewrites both ratchet baselines (per-file panic counts and
/// panic-reaching entry points) from the current outcome, returning the
/// rendered panic-baseline text.
///
/// # Errors
///
/// Propagates write failures.
pub fn update_baseline(root: &Path, outcome: &LintOutcome) -> Result<String, String> {
    let counts: BTreeMap<String, usize> =
        outcome.panic_sites.iter().map(|(p, s)| (p.clone(), s.len())).collect();
    let text = baseline::render(&counts);
    let path = root.join(BASELINE_PATH);
    std::fs::write(&path, &text).map_err(|e| format!("write {}: {e}", path.display()))?;
    let reach_text = reach::render_baseline(&outcome.reach);
    let reach_path = root.join(REACH_BASELINE_PATH);
    std::fs::write(&reach_path, &reach_text)
        .map_err(|e| format!("write {}: {e}", reach_path.display()))?;
    Ok(text)
}

fn read_optional(path: &Path) -> Result<String, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => Ok(text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(String::new()),
        Err(e) => Err(format!("read {}: {e}", path.display())),
    }
}

/// Formats the unsafe-site inventory for `--unsafe-report`.
pub fn format_unsafe_report(inventory: &[UnsafeSite]) -> String {
    let mut out = String::new();
    out.push_str(&format!("unsafe audit: {} site(s) in the exempt crate(s)\n", inventory.len()));
    for site in inventory {
        out.push_str(&format!(
            "\n  {}:{} {}\n    documented: {}\n",
            site.path,
            site.line,
            site.context,
            if site.documented { "yes" } else { "NO — missing // SAFETY:" }
        ));
        for line in &site.comment_block {
            out.push_str(&format!("    {line}\n"));
        }
    }
    out
}

/// Formats violations as a compiler-style report, grouped by lint.
pub fn format_report(outcome: &LintOutcome, verbose: bool) -> String {
    let mut out = String::new();
    if verbose {
        for diag in &outcome.suppressed {
            out.push_str(&format!(
                "allowed  [{}] {}:{} {}\n",
                diag.lint, diag.path, diag.line, diag.message
            ));
        }
    }
    for diag in &outcome.violations {
        out.push_str(&format!(
            "error    [{}] {}:{} {}\n",
            diag.lint, diag.path, diag.line, diag.message
        ));
    }
    let panic_total: usize = outcome.panic_sites.values().map(Vec::len).sum();
    out.push_str(&format!(
        "xtask lint: {} file(s) scanned, {} violation(s), {} suppressed by allowlist, \
         {} ratcheted panic site(s) across {} file(s)\n",
        outcome.files_scanned,
        outcome.violations.len(),
        outcome.suppressed.len(),
        panic_total,
        outcome.panic_sites.len(),
    ));
    out.push_str(&format!(
        "analysis: {} function(s), {} call edge(s); {} of {} entry point(s) reach a panic; \
         {} lock(s), {} ordering edge(s), {} cycle(s)\n",
        outcome.functions,
        outcome.call_edges,
        outcome.reach.reaching().len(),
        outcome.reach.entries.len(),
        outcome.locks.locks.len(),
        outcome.locks.edges.len(),
        outcome.locks.cycles.len(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lints::lint;

    #[test]
    fn lint_sources_end_to_end_clean_and_dirty() {
        let clean = vec![(
            "crates/fdm/src/x.rs".to_string(),
            "fn f() -> Result<(), ()> { Ok(()) }\n".to_string(),
        )];
        let outcome = lint_sources(&clean, "", "", "").unwrap();
        assert!(outcome.is_clean(), "{:?}", outcome.violations);

        let dirty = vec![(
            "crates/fdm/src/x.rs".to_string(),
            "fn f() { let _ = std::time::Instant::now(); }\n".to_string(),
        )];
        let outcome = lint_sources(&dirty, "", "", "").unwrap();
        assert_eq!(outcome.violations.len(), 1);
        assert_eq!(outcome.violations[0].lint, lint::DETERMINISM_TIME);
    }

    #[test]
    fn vendor_and_fixture_files_are_ignored() {
        let sources = vec![
            ("vendor/rand/src/lib.rs".to_string(), "fn f() { x.unwrap(); unsafe {} }".into()),
            ("xtask/tests/fixtures/bad.rs".to_string(), "fn f() { panic!(); }".into()),
        ];
        let outcome = lint_sources(&sources, "", "", "").unwrap();
        assert!(outcome.is_clean());
        assert_eq!(outcome.files_scanned, 0);
    }

    #[test]
    fn unsafe_inventory_collects_parallel_sites() {
        let sources = vec![(
            "crates/parallel/src/lib.rs".to_string(),
            "#![allow(unused)]\n// SAFETY: sound because reasons.\nfn f(p: *const u8) { let _ = unsafe { p.read() }; }\n"
                .to_string(),
        )];
        let outcome = lint_sources(&sources, "", "", "").unwrap();
        assert!(outcome.is_clean(), "{:?}", outcome.violations);
        assert_eq!(outcome.unsafe_inventory.len(), 1);
        assert!(outcome.unsafe_inventory[0].documented);
        let report = format_unsafe_report(&outcome.unsafe_inventory);
        assert!(report.contains("SAFETY: sound because reasons."), "{report}");
    }
}
