//! The three lint families over a [`ScannedFile`]: determinism,
//! panic-freedom and the unsafe audit. Each check is a pure function from
//! scanned source to [`Diagnostic`]s so the engine is testable on fixture
//! snippets without touching the real workspace.

use crate::scanner::{find_from, word_offsets, ScannedFile};

/// Crates whose library code may read wall clocks: telemetry measures
/// them by design and bench exists to time things.
pub const TIME_EXEMPT_CRATES: &[&str] = &["telemetry", "bench", "xtask"];
/// The only crate allowed to spawn OS threads: every other crate must go
/// through the deterministic `deepoheat-parallel` pool.
pub const SPAWN_EXEMPT_CRATES: &[&str] = &["parallel", "xtask"];
/// Result-producing crates where `HashMap`/`HashSet` iteration order could
/// leak into numerical output; `BTreeMap` (deterministic order) is the
/// sanctioned associative container there.
pub const HASH_LINT_CRATES: &[&str] =
    &["linalg", "fdm", "nn", "autodiff", "core", "grf", "chip", "parallel", "serve"];
/// Crates whose library code is held to the panic-freedom ratchet.
pub const PANIC_LINT_CRATES: &[&str] = &["linalg", "fdm", "nn", "autodiff", "core", "serve"];
/// The only crate permitted to contain `unsafe` code (audited separately).
pub const UNSAFE_EXEMPT_CRATES: &[&str] = &["parallel"];
/// Individual files outside the exempt crates that may contain `unsafe`:
/// the SIMD microkernel module of `deepoheat-linalg`. Sites here are held
/// to the same `// SAFETY:` documentation rule as the exempt crates and
/// are listed by `--unsafe-report`; the owning crate root keeps
/// `#![deny(unsafe_code)]` with a module-scoped `#[allow]`.
pub const UNSAFE_AUDITED_PATHS: &[&str] = &["crates/linalg/src/kernels/simd.rs"];

/// How far above an `unsafe` token a `// SAFETY:` justification may sit.
const SAFETY_COMMENT_WINDOW_LINES: usize = 12;

/// Lint identifiers, used in reports and as allowlist keys.
pub mod lint {
    /// Wall-clock APIs (`Instant`, `SystemTime`) outside telemetry/bench.
    pub const DETERMINISM_TIME: &str = "determinism-time";
    /// `thread::spawn` outside `deepoheat-parallel`.
    pub const DETERMINISM_SPAWN: &str = "determinism-spawn";
    /// `HashMap`/`HashSet` in result-producing library code.
    pub const DETERMINISM_HASH: &str = "determinism-hash";
    /// Panic-capable call sites above the ratchet baseline.
    pub const PANIC_FREEDOM: &str = "panic-freedom";
    /// Missing `#![deny(unsafe_code)]` on a crate root.
    pub const UNSAFE_DENY: &str = "unsafe-deny-missing";
    /// `unsafe` token in a crate that must stay safe.
    pub const UNSAFE_FORBIDDEN: &str = "unsafe-forbidden";
    /// `unsafe` block without a `// SAFETY:` justification.
    pub const UNSAFE_UNDOCUMENTED: &str = "unsafe-undocumented";
    /// Allowlist entry that no longer suppresses anything.
    pub const ALLOWLIST_STALE: &str = "allowlist-stale";
    /// Baseline entry for a file that no longer exists or now has fewer
    /// sites (must be re-ratcheted down).
    pub const BASELINE_STALE: &str = "baseline-stale";
    /// Public entry point that newly reaches a panic site (call-graph
    /// ratchet over `xtask/panic-reach-baseline.txt`).
    pub const PANIC_REACH: &str = "panic-reach";
    /// Reach-baseline entry for an entry point that no longer reaches a
    /// panic (improvement must be locked in).
    pub const REACH_BASELINE_STALE: &str = "reach-baseline-stale";
    /// Two mutexes acquirable in conflicting orders along the call graph.
    pub const LOCK_ORDER: &str = "lock-order";
    /// `==`/`!=` with a floating-point operand in result-producing code.
    pub const FLOAT_EQ: &str = "float-eq";
    /// `partial_cmp(..).unwrap()`/`.expect(..)` — panics on NaN and makes
    /// sort keys panic-capable.
    pub const FLOAT_CMP_UNWRAP: &str = "float-cmp-unwrap";
    /// Lossy `as` cast on a floating-point value in result-producing code.
    pub const FLOAT_AS_LOSSY: &str = "float-as-lossy";

    /// Every lint id the engine can emit — allowlist entries naming
    /// anything else are typos and rejected at parse time.
    pub const ALL: &[&str] = &[
        DETERMINISM_TIME,
        DETERMINISM_SPAWN,
        DETERMINISM_HASH,
        PANIC_FREEDOM,
        UNSAFE_DENY,
        UNSAFE_FORBIDDEN,
        UNSAFE_UNDOCUMENTED,
        ALLOWLIST_STALE,
        BASELINE_STALE,
        PANIC_REACH,
        REACH_BASELINE_STALE,
        LOCK_ORDER,
        FLOAT_EQ,
        FLOAT_CMP_UNWRAP,
        FLOAT_AS_LOSSY,
    ];
}

/// One lint finding at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Lint identifier from [`lint`].
    pub lint: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line (0 for file-level findings).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    fn at(lint: &'static str, file: &ScannedFile, offset: usize, message: String) -> Self {
        Diagnostic { lint, path: file.path.clone(), line: file.line_of(offset), message }
    }
}

/// What a file is, derived from its workspace-relative path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/**` (excluding `src/bin/`): the crate's library code.
    Library,
    /// `src/main.rs` or `src/bin/*.rs`.
    Binary,
    /// `examples/*.rs`.
    Example,
    /// `tests/**` or `benches/**`.
    TestOrBench,
}

/// Path-derived identity of a file: owning crate plus target kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileClass {
    /// Short crate name (`linalg`, `parallel`, …); the workspace-root
    /// package is `"workspace"`, the lint driver itself `"xtask"`.
    pub crate_name: String,
    /// Which compilation target the file belongs to.
    pub kind: FileKind,
}

/// Classifies a workspace-relative path. Returns `None` for files the lint
/// pass does not own: vendored shims and the xtask test fixtures (which
/// deliberately contain violations).
pub fn classify(path: &str) -> Option<FileClass> {
    if path.starts_with("vendor/") || path.starts_with("target/") {
        return None;
    }
    if path.starts_with("xtask/tests/fixtures/") {
        return None;
    }
    let (crate_name, local) = if let Some(rest) = path.strip_prefix("crates/") {
        let (name, local) = rest.split_once('/')?;
        (name.to_string(), local)
    } else if let Some(local) = path.strip_prefix("xtask/") {
        ("xtask".to_string(), local)
    } else {
        ("workspace".to_string(), path)
    };
    let kind = if local.starts_with("tests/") || local.starts_with("benches/") {
        FileKind::TestOrBench
    } else if local.starts_with("examples/") {
        FileKind::Example
    } else if local == "src/main.rs" || local.starts_with("src/bin/") {
        FileKind::Binary
    } else if local.starts_with("src/") {
        FileKind::Library
    } else {
        return None; // build scripts, docs, data files
    };
    Some(FileClass { crate_name, kind })
}

/// Whether a crate-root file must carry `#![deny(unsafe_code)]`. Every
/// compilation-target root outside `deepoheat-parallel` must: the
/// attribute does not propagate across targets, so bins, examples and
/// benches each need their own.
pub fn requires_unsafe_deny(path: &str, class: &FileClass) -> bool {
    if UNSAFE_EXEMPT_CRATES.contains(&class.crate_name.as_str()) {
        return false;
    }
    let is_root = path.ends_with("src/lib.rs")
        || path.ends_with("src/main.rs")
        || path.contains("/src/bin/")
        || matches!(class.kind, FileKind::Example)
        || path.contains("/benches/");
    is_root && !path.contains("/tests/") && !path.starts_with("tests/")
}

/// Runs the determinism family over one file, appending findings.
pub fn check_determinism(file: &ScannedFile, class: &FileClass, out: &mut Vec<Diagnostic>) {
    // Determinism lints police *library* code: result-producing paths live
    // there. Binaries, examples, tests and benches are drivers.
    if class.kind != FileKind::Library {
        return;
    }
    let name = class.crate_name.as_str();
    if !TIME_EXEMPT_CRATES.contains(&name) {
        for word in ["Instant", "SystemTime"] {
            for off in word_offsets(&file.masked, word) {
                if file.in_test_code(off) {
                    continue;
                }
                out.push(Diagnostic::at(
                    lint::DETERMINISM_TIME,
                    file,
                    off,
                    format!(
                        "`{word}` in result-producing code: wall clocks are reserved for \
                         telemetry/bench (route timings through deepoheat-telemetry spans)"
                    ),
                ));
            }
        }
    }
    if !SPAWN_EXEMPT_CRATES.contains(&name) {
        let mut from = 0;
        while let Some(off) = find_from(&file.masked, b"thread::spawn", from) {
            from = off + 1;
            if file.in_test_code(off) {
                continue;
            }
            out.push(Diagnostic::at(
                lint::DETERMINISM_SPAWN,
                file,
                off,
                "`thread::spawn` outside deepoheat-parallel: all parallelism must go through \
                 the deterministic pool (parallel::run_scope / par_map_chunks)"
                    .to_string(),
            ));
        }
    }
    if HASH_LINT_CRATES.contains(&name) {
        for word in ["HashMap", "HashSet"] {
            for off in word_offsets(&file.masked, word) {
                if file.in_test_code(off) {
                    continue;
                }
                out.push(Diagnostic::at(
                    lint::DETERMINISM_HASH,
                    file,
                    off,
                    format!(
                        "`{word}` in a result-producing crate: iteration order is \
                         nondeterministic; use BTreeMap/BTreeSet or a Vec"
                    ),
                ));
            }
        }
    }
}

/// A panic-capable call site found by [`count_panic_sites`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicSite {
    /// 1-based line.
    pub line: usize,
    /// Byte offset of the matched token — lets the reachability pass
    /// attribute the site to the enclosing function body.
    pub offset: usize,
    /// What was matched (`unwrap`, `expect`, `panic!`, …).
    pub what: String,
}

/// Counts panic-capable sites in non-test library code: `.unwrap()`,
/// `.expect(..)` (unless the message documents an invariant with an
/// `"invariant: …"` prefix), `panic!`/`unreachable!`/`todo!`/
/// `unimplemented!`, and `assert!`/`assert_eq!`/`assert_ne!`
/// (`debug_assert*` is exempt: it compiles out of release builds).
pub fn count_panic_sites(file: &ScannedFile) -> Vec<PanicSite> {
    let mut sites = Vec::new();
    for method in ["unwrap", "expect"] {
        for off in word_offsets(&file.masked, method) {
            if file.in_test_code(off) {
                continue;
            }
            // Must be a method call: preceded by `.`, followed by `(`.
            if off == 0 || file.masked[off - 1] != b'.' {
                continue;
            }
            let after = off + method.len();
            if file.masked.get(after) != Some(&b'(') {
                continue;
            }
            if method == "expect" && expect_documents_invariant(file, after) {
                continue;
            }
            sites.push(PanicSite {
                line: file.line_of(off),
                offset: off,
                what: format!(".{method}()"),
            });
        }
    }
    for mac in ["panic", "unreachable", "todo", "unimplemented", "assert", "assert_eq", "assert_ne"]
    {
        for off in word_offsets(&file.masked, mac) {
            if file.in_test_code(off) {
                continue;
            }
            if file.masked.get(off + mac.len()) != Some(&b'!') {
                continue;
            }
            sites.push(PanicSite { line: file.line_of(off), offset: off, what: format!("{mac}!") });
        }
    }
    sites.sort_by_key(|s| s.line);
    sites
}

/// Whether the `.expect(` call whose `(` is at `open` carries a string
/// literal starting with `"invariant: "` — the sanctioned way to keep an
/// expect in library code (see STATIC_ANALYSIS.md). The message must
/// state *why* the value is always present, which is what reviewers audit.
fn expect_documents_invariant(file: &ScannedFile, open: usize) -> bool {
    let bytes = file.raw.as_bytes();
    let mut i = open + 1;
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        return false; // non-literal message: cannot be audited statically
    }
    file.raw[i + 1..].starts_with("invariant: ")
}

/// One `unsafe` occurrence and its justification, for the audit report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsafeSite {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line of the `unsafe` token.
    pub line: usize,
    /// The source line, trimmed.
    pub context: String,
    /// The contiguous `//` comment block directly above (trimmed lines),
    /// empty if there is none.
    pub comment_block: Vec<String>,
    /// Whether a `// SAFETY:` line was found within the search window.
    pub documented: bool,
}

/// Finds every `unsafe` token in non-test code and pairs it with the
/// contiguous comment block above it. A site is documented iff `SAFETY:`
/// appears in that block, on the site's own line, or within
/// [`SAFETY_COMMENT_WINDOW_LINES`] lines above it (the window covers
/// comments separated from the site by attribute lines).
pub fn unsafe_sites(file: &ScannedFile) -> Vec<UnsafeSite> {
    let raw_lines: Vec<&str> = file.raw.lines().collect();
    let mut sites = Vec::new();
    for off in word_offsets(&file.masked, "unsafe") {
        if file.in_test_code(off) {
            continue;
        }
        let line = file.line_of(off);
        let idx = line - 1;
        let window_start = idx.saturating_sub(SAFETY_COMMENT_WINDOW_LINES);
        // Scan the window bottom-up, stopping at the first blank line so a
        // neighbouring item's SAFETY comment cannot vouch for this site.
        let mut documented = false;
        for l in raw_lines[window_start..=idx.min(raw_lines.len().saturating_sub(1))].iter().rev() {
            let t = l.trim_start();
            if t.is_empty() {
                break;
            }
            if t.contains("SAFETY:") && (t.starts_with("//") || !t.starts_with("unsafe")) {
                documented = true;
                break;
            }
        }
        let mut comment_block = Vec::new();
        for l in raw_lines[..idx].iter().rev() {
            let t = l.trim();
            if t.starts_with("//") {
                comment_block.push(t.to_string());
            } else {
                break;
            }
        }
        comment_block.reverse();
        // A SAFETY: marker anywhere in the contiguous block counts even
        // when the block is longer than the line window.
        documented = documented || comment_block.iter().any(|l| l.contains("SAFETY:"));
        sites.push(UnsafeSite {
            path: file.path.clone(),
            line,
            context: raw_lines.get(idx).map_or(String::new(), |l| l.trim().to_string()),
            comment_block,
            documented,
        });
    }
    sites
}

/// Runs the unsafe-audit family over one file, appending findings.
pub fn check_unsafe(file: &ScannedFile, class: &FileClass, out: &mut Vec<Diagnostic>) {
    let exempt = UNSAFE_EXEMPT_CRATES.contains(&class.crate_name.as_str())
        || UNSAFE_AUDITED_PATHS.contains(&file.path.as_str());
    if !exempt {
        for off in word_offsets(&file.masked, "unsafe") {
            // `#![deny(unsafe_code)]`-adjacent mentions are masked away
            // only in comments/strings; the attribute itself names the
            // lint, not the keyword, so a bare `unsafe` here is real code.
            if file.in_test_code(off) {
                continue;
            }
            out.push(Diagnostic::at(
                lint::UNSAFE_FORBIDDEN,
                file,
                off,
                format!(
                    "`unsafe` in {}: only deepoheat-parallel and the audited kernel modules \
                     (UNSAFE_AUDITED_PATHS) may contain unsafe code (and each site needs a \
                     // SAFETY: justification there)",
                    class.crate_name
                ),
            ));
        }
    }
    if requires_unsafe_deny(&file.path, class)
        && find_from(&file.masked, b"#![deny(unsafe_code)]", 0).is_none()
        && find_from(&file.masked, b"#![forbid(unsafe_code)]", 0).is_none()
    {
        out.push(Diagnostic {
            lint: lint::UNSAFE_DENY,
            path: file.path.clone(),
            line: 1,
            message: "crate-root file is missing `#![deny(unsafe_code)]` (the attribute does \
                      not propagate across targets, so every root needs its own)"
                .to_string(),
        });
    }
    if exempt {
        for site in unsafe_sites(file) {
            if !site.documented {
                out.push(Diagnostic {
                    lint: lint::UNSAFE_UNDOCUMENTED,
                    path: site.path,
                    line: site.line,
                    message: format!(
                        "`unsafe` without a `// SAFETY:` justification within {SAFETY_COMMENT_WINDOW_LINES} \
                         lines above: `{}`",
                        site.context
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_class(name: &str) -> FileClass {
        FileClass { crate_name: name.into(), kind: FileKind::Library }
    }

    #[test]
    fn classify_maps_paths_to_crates_and_kinds() {
        let c = classify("crates/linalg/src/cg.rs").unwrap();
        assert_eq!(c, lib_class("linalg"));
        assert_eq!(classify("crates/bench/src/bin/table1.rs").unwrap().kind, FileKind::Binary);
        assert_eq!(classify("crates/nn/tests/properties.rs").unwrap().kind, FileKind::TestOrBench);
        assert_eq!(
            classify("crates/bench/benches/fdm_solve.rs").unwrap().kind,
            FileKind::TestOrBench
        );
        assert_eq!(classify("examples/quickstart.rs").unwrap().kind, FileKind::Example);
        assert_eq!(classify("src/lib.rs").unwrap().crate_name, "workspace");
        assert_eq!(classify("xtask/src/main.rs").unwrap().crate_name, "xtask");
        assert!(classify("vendor/rand/src/lib.rs").is_none());
        assert!(classify("xtask/tests/fixtures/bad.rs").is_none());
        assert!(classify("README.md").is_none());
    }

    #[test]
    fn time_lint_fires_outside_telemetry_and_bench() {
        let f = ScannedFile::new("crates/fdm/src/x.rs", "fn f() { let t = Instant::now(); }");
        let mut out = Vec::new();
        check_determinism(&f, &lib_class("fdm"), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].lint, lint::DETERMINISM_TIME);

        let mut out = Vec::new();
        check_determinism(&f, &lib_class("telemetry"), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn spawn_and_hash_lints_scope_correctly() {
        let src = "use std::collections::HashMap;\nfn f() { std::thread::spawn(|| {}); }";
        let f = ScannedFile::new("crates/core/src/x.rs", src);
        let mut out = Vec::new();
        check_determinism(&f, &lib_class("core"), &mut out);
        let lints: Vec<_> = out.iter().map(|d| d.lint).collect();
        assert!(lints.contains(&lint::DETERMINISM_SPAWN));
        assert!(lints.contains(&lint::DETERMINISM_HASH));

        // parallel may spawn; telemetry may use HashMap (not result-producing).
        let mut out = Vec::new();
        check_determinism(&f, &lib_class("parallel"), &mut out);
        assert!(out.iter().all(|d| d.lint != lint::DETERMINISM_SPAWN));
    }

    #[test]
    fn comments_and_tests_do_not_trip_determinism_lints() {
        let src = "// Instant is banned here\nfn f() {}\n#[cfg(test)]\nmod tests {\n  fn t() { let _ = std::time::Instant::now(); }\n}\n";
        let f = ScannedFile::new("crates/fdm/src/x.rs", src);
        let mut out = Vec::new();
        check_determinism(&f, &lib_class("fdm"), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn panic_sites_are_counted_with_invariant_exemption() {
        let src = r#"
fn f(v: Option<u32>) -> u32 {
    let a = v.unwrap();
    let b = v.expect("oops");
    let c = v.expect("invariant: caller checked is_some above");
    assert!(a > 0);
    debug_assert!(b > 0);
    if a == 3 { panic!("boom"); }
    a + b + c
}
#[cfg(test)]
mod tests {
    fn t() { None::<u32>.unwrap(); }
}
"#;
        let f = ScannedFile::new("crates/linalg/src/x.rs", src);
        let sites = count_panic_sites(&f);
        let whats: Vec<_> = sites.iter().map(|s| s.what.as_str()).collect();
        assert_eq!(whats, vec![".unwrap()", ".expect()", "assert!", "panic!"], "{sites:?}");
    }

    #[test]
    fn unsafe_lints_forbid_and_require_safety_comments() {
        let f = ScannedFile::new("crates/linalg/src/x.rs", "fn f() { unsafe { } }");
        let mut out = Vec::new();
        check_unsafe(&f, &lib_class("linalg"), &mut out);
        assert_eq!(out[0].lint, lint::UNSAFE_FORBIDDEN);

        let documented = "// SAFETY: the pointer outlives the call.\nfn g(p: *const u8) { unsafe { p.read(); } }";
        let f = ScannedFile::new("crates/parallel/src/x.rs", documented);
        let mut out = Vec::new();
        check_unsafe(&f, &lib_class("parallel"), &mut out);
        assert!(out.is_empty(), "{out:?}");

        let undocumented = "fn g(p: *const u8) { unsafe { p.read(); } }";
        let f = ScannedFile::new("crates/parallel/src/x.rs", undocumented);
        let mut out = Vec::new();
        check_unsafe(&f, &lib_class("parallel"), &mut out);
        assert_eq!(out[0].lint, lint::UNSAFE_UNDOCUMENTED);
    }

    #[test]
    fn audited_paths_allow_unsafe_but_still_require_safety_comments() {
        let path = "crates/linalg/src/kernels/simd.rs";
        assert!(UNSAFE_AUDITED_PATHS.contains(&path));

        let documented = "// SAFETY: feature detection ran above.\nfn f() { unsafe { core::arch::x86_64::_mm256_setzero_pd(); } }";
        let f = ScannedFile::new(path, documented);
        let mut out = Vec::new();
        check_unsafe(&f, &lib_class("linalg"), &mut out);
        assert!(out.is_empty(), "{out:?}");

        let undocumented = "fn f(p: *const f64) { unsafe { p.read(); } }";
        let f = ScannedFile::new(path, undocumented);
        let mut out = Vec::new();
        check_unsafe(&f, &lib_class("linalg"), &mut out);
        assert_eq!(out[0].lint, lint::UNSAFE_UNDOCUMENTED);

        // A sibling file in the same crate stays forbidden.
        let f = ScannedFile::new("crates/linalg/src/kernels/mod.rs", undocumented);
        let mut out = Vec::new();
        check_unsafe(&f, &lib_class("linalg"), &mut out);
        assert_eq!(out[0].lint, lint::UNSAFE_FORBIDDEN);
    }

    #[test]
    fn crate_roots_must_deny_unsafe_code() {
        let f = ScannedFile::new("crates/linalg/src/lib.rs", "//! docs\nmod x;\n");
        let mut out = Vec::new();
        check_unsafe(&f, &lib_class("linalg"), &mut out);
        assert_eq!(out[0].lint, lint::UNSAFE_DENY);

        let ok = ScannedFile::new("crates/linalg/src/lib.rs", "#![deny(unsafe_code)]\nmod x;\n");
        let mut out = Vec::new();
        check_unsafe(&ok, &lib_class("linalg"), &mut out);
        assert!(out.is_empty());

        // Non-root library files do not need the attribute.
        let inner = ScannedFile::new("crates/linalg/src/cg.rs", "mod x;\n");
        let mut out = Vec::new();
        check_unsafe(&inner, &lib_class("linalg"), &mut out);
        assert!(out.is_empty());
    }
}
