//! Lock-order analysis: a may-hold-while-acquiring graph over the
//! `Mutex` fields of the concurrent crates, with cycle detection.
//!
//! Each `Mutex`-typed struct field gets a stable identity
//! (`crate::Struct.field`). An acquisition is a `.lock()` call whose
//! receiver chain types to such a field, or a call to a guard-returning
//! wrapper (`fn … -> MutexGuard<…>`), which acquires the wrapper's own
//! lock set at the call site. A guard bound with `let` is held to the end
//! of its enclosing block (truncated at an explicit `drop(guard)`); an
//! unbound temporary is held to the end of its statement. While a lock is
//! held, every later acquisition in the region — direct, or transitively
//! through any called function — adds a `held → acquired` edge. A cycle
//! in that graph is a potential deadlock and fails as
//! [`lint::LOCK_ORDER`]; argued false positives go in the allowlist.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::Workspace;
use crate::lexer::{lex, Tok};
use crate::lints::{lint, Diagnostic, FileKind};

/// Crates whose mutexes participate in the analysis: the serving
/// front-end, the thread pool, and the telemetry registry/sink.
pub const LOCK_CRATES: &[&str] = &["serve", "parallel", "telemetry"];

/// One `held → acquired` observation, with its witness site.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    /// Lock held at the point of acquisition.
    pub held: String,
    /// Lock being acquired.
    pub acquired: String,
    /// Qualified name of the function where this happens.
    pub holder: String,
    /// Workspace-relative file of the acquisition.
    pub path: String,
    /// 1-based line of the acquisition.
    pub line: usize,
}

/// Everything the pass learned, for the JSON report.
#[derive(Debug, Clone, Default)]
pub struct LockReport {
    /// Every `Mutex` field identity discovered, sorted.
    pub locks: Vec<String>,
    /// Deduplicated ordering observations.
    pub edges: Vec<LockEdge>,
    /// Lock-id cycles (each sorted, the set deduplicated).
    pub cycles: Vec<Vec<String>>,
}

/// One acquisition inside a function body.
#[derive(Debug, Clone)]
struct Acq {
    /// Locks taken here (one for a direct `.lock()`, the wrapper's set
    /// for a guard-returning call).
    locks: Vec<String>,
    /// Byte offset of the acquiring call.
    offset: usize,
    /// Byte offset where the guard is provably dead.
    hold_end: usize,
}

/// Runs the pass, appending a diagnostic per cycle.
pub fn analyze(ws: &Workspace, out: &mut Vec<Diagnostic>) -> LockReport {
    let in_scope: Vec<bool> = (0..ws.fns.len())
        .map(|id| {
            let f = &ws.fns[id];
            let class = &ws.classes[f.file];
            !f.is_test
                && class.kind == FileKind::Library
                && LOCK_CRATES.contains(&class.crate_name.as_str())
        })
        .collect();

    // Pass A: direct mutex-field acquisitions per function.
    let mut direct: Vec<Vec<Acq>> = vec![Vec::new(); ws.fns.len()];
    let mut all_locks = BTreeSet::new();
    for id in 0..ws.fns.len() {
        if !in_scope[id] {
            continue;
        }
        for site in &ws.calls[id] {
            if site.name != "lock" {
                continue;
            }
            let crate::callgraph::CallKind::Method(chain) = &site.kind else { continue };
            let Some((sid, field, ty)) = ws.chain_final_field(id, chain) else { continue };
            if !ty.contains("Mutex<") {
                continue;
            }
            let s = &ws.structs[sid];
            let lock = format!("{}::{}.{}", s.crate_name, s.name, field);
            all_locks.insert(lock.clone());
            direct[id].push(Acq { locks: vec![lock], offset: site.offset, hold_end: 0 });
        }
    }

    // Guard-returning wrappers acquire their direct set at the caller.
    let wrapper_locks: BTreeMap<usize, Vec<String>> = (0..ws.fns.len())
        .filter(|&id| {
            in_scope[id] && ws.fns[id].ret.contains("MutexGuard") && !direct[id].is_empty()
        })
        .map(|id| {
            let mut locks: Vec<String> =
                direct[id].iter().flat_map(|a| a.locks.iter().cloned()).collect();
            locks.sort();
            locks.dedup();
            (id, locks)
        })
        .collect();

    // Pass B: full acquisition lists with hold regions.
    let mut acqs: Vec<Vec<Acq>> = vec![Vec::new(); ws.fns.len()];
    for id in 0..ws.fns.len() {
        if !in_scope[id] {
            continue;
        }
        let mut list = direct[id].clone();
        for site in &ws.calls[id] {
            let locks: Vec<String> = site
                .targets
                .iter()
                .filter_map(|t| wrapper_locks.get(t))
                .flat_map(|ls| ls.iter().cloned())
                .collect();
            if !locks.is_empty() {
                list.push(Acq { locks, offset: site.offset, hold_end: 0 });
            }
        }
        if list.is_empty() {
            continue;
        }
        let f = &ws.fns[id];
        let file = &ws.files[f.file];
        let toks = lex(&file.masked[f.body.0..f.body.1]);
        let texts: Vec<&str> = toks
            .iter()
            .map(|t| {
                std::str::from_utf8(&file.masked[f.body.0 + t.start..f.body.0 + t.end])
                    .unwrap_or("")
            })
            .collect();
        for acq in &mut list {
            acq.hold_end = hold_end(&toks, &texts, f.body, acq.offset);
        }
        list.sort_by_key(|a| a.offset);
        acqs[id] = list;
    }

    // Transitive lock sets along call edges, to fixpoint.
    let mut trans: Vec<BTreeSet<String>> = acqs
        .iter()
        .map(|list| list.iter().flat_map(|a| a.locks.iter().cloned()).collect())
        .collect();
    loop {
        let mut changed = false;
        for id in 0..ws.fns.len() {
            for &callee in &ws.edges[id] {
                let add: Vec<String> =
                    trans[callee].iter().filter(|l| !trans[id].contains(*l)).cloned().collect();
                if !add.is_empty() {
                    trans[id].extend(add);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Held-while-acquiring edges.
    let mut edges = BTreeSet::new();
    for id in 0..ws.fns.len() {
        if acqs[id].is_empty() {
            continue;
        }
        let f = &ws.fns[id];
        let file = &ws.files[f.file];
        for a in &acqs[id] {
            for b in &acqs[id] {
                if b.offset > a.offset && b.offset < a.hold_end {
                    for held in &a.locks {
                        for acquired in &b.locks {
                            edges.insert(LockEdge {
                                held: held.clone(),
                                acquired: acquired.clone(),
                                holder: f.qualified(),
                                path: file.path.clone(),
                                line: file.line_of(b.offset),
                            });
                        }
                    }
                }
            }
            for site in &ws.calls[id] {
                if site.offset <= a.offset || site.offset >= a.hold_end {
                    continue;
                }
                for &t in &site.targets {
                    for acquired in &trans[t] {
                        for held in &a.locks {
                            edges.insert(LockEdge {
                                held: held.clone(),
                                acquired: acquired.clone(),
                                holder: f.qualified(),
                                path: file.path.clone(),
                                line: file.line_of(site.offset),
                            });
                        }
                    }
                }
            }
        }
    }
    let edges: Vec<LockEdge> = edges.into_iter().collect();

    let cycles = find_cycles(&edges);
    for cycle in &cycles {
        let witness = edges
            .iter()
            .find(|e| cycle.contains(&e.held) && cycle.contains(&e.acquired))
            .expect("invariant: every reported cycle is built from at least one edge");
        let mut loop_text = cycle.join(" -> ");
        loop_text.push_str(" -> ");
        loop_text.push_str(&cycle[0]);
        out.push(Diagnostic {
            lint: lint::LOCK_ORDER,
            path: witness.path.clone(),
            line: witness.line,
            message: format!(
                "lock-order cycle {loop_text} (e.g. `{}` acquires {} while holding {}): \
                 pick one acquisition order or drop the guard first",
                witness.holder, witness.acquired, witness.held
            ),
        });
    }

    LockReport { locks: all_locks.into_iter().collect(), edges, cycles }
}

/// Where the guard taken at `offset` dies: end of the enclosing block for
/// a `let`-bound guard (truncated at `drop(name)`), end of the statement
/// for a temporary. `body` is the byte span the tokens were lexed from.
fn hold_end(toks: &[Tok], texts: &[&str], body: (usize, usize), offset: usize) -> usize {
    let rel = offset - body.0;
    let Some(site) = toks.iter().position(|t| t.start == rel) else { return offset };

    // Walk back over the receiver chain (`ident .` pairs) to the start of
    // the expression, then decide whether a `let` binds it.
    let mut expr = site;
    while expr >= 2 && texts[expr - 1] == "." {
        expr -= 2;
    }
    let mut stmt = expr;
    while stmt > 0 && !matches!(texts[stmt - 1], ";" | "{" | "}") {
        stmt -= 1;
    }
    let bound = (texts[stmt] == "let").then(|| {
        let name_idx = if texts.get(stmt + 1) == Some(&"mut") { stmt + 2 } else { stmt + 1 };
        texts.get(name_idx).copied().unwrap_or("")
    });

    match bound {
        Some(name) => {
            // To the end of the enclosing block, or an explicit drop.
            let mut depth = 0i32;
            for (i, t) in texts.iter().enumerate().skip(site + 1) {
                match *t {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth < 0 {
                            return body.0 + toks[i].start;
                        }
                    }
                    "drop"
                        if depth == 0
                            && texts.get(i + 1) == Some(&"(")
                            && texts.get(i + 2) == Some(&name) =>
                    {
                        return body.0 + toks[i].start;
                    }
                    _ => {}
                }
            }
            body.1
        }
        None => {
            // A temporary: to the `;` closing this statement.
            let mut depth = 0i32;
            for (i, t) in texts.iter().enumerate().skip(site + 1) {
                match *t {
                    "{" | "(" | "[" => depth += 1,
                    "}" | ")" | "]" => {
                        depth -= 1;
                        if depth < 0 {
                            return body.0 + toks[i].start;
                        }
                    }
                    ";" if depth == 0 => return body.0 + toks[i].start,
                    _ => {}
                }
            }
            body.1
        }
    }
}

/// Finds cycles in the lock graph: for every edge `a → b`, a path back
/// `b ⇝ a` closes a cycle. Cycles are reported as their sorted node sets,
/// deduplicated; a self-edge is a one-node cycle (std mutexes are not
/// reentrant).
fn find_cycles(edges: &[LockEdge]) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.held.as_str()).or_default().insert(e.acquired.as_str());
    }
    let mut cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    for e in edges {
        if e.held == e.acquired {
            cycles.insert(vec![e.held.clone()]);
            continue;
        }
        // BFS from `acquired` back to `held`.
        let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(e.acquired.as_str());
        let mut found = false;
        while let Some(node) = queue.pop_front() {
            if node == e.held {
                found = true;
                break;
            }
            for &next in adj.get(node).into_iter().flatten() {
                if next != e.acquired.as_str() && !prev.contains_key(next) {
                    prev.insert(next, node);
                    queue.push_back(next);
                }
            }
        }
        if found {
            let mut members = vec![e.acquired.clone()];
            let mut cur = e.held.as_str();
            while cur != e.acquired {
                members.push(cur.to_string());
                cur = prev.get(cur).copied().unwrap_or(e.acquired.as_str());
            }
            members.sort();
            members.dedup();
            cycles.insert(members);
        }
    }
    cycles.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::{classify, FileClass};
    use crate::scanner::ScannedFile;

    fn run(sources: &[(&str, &str)]) -> (LockReport, Vec<Diagnostic>) {
        let files: Vec<ScannedFile> =
            sources.iter().map(|(p, s)| ScannedFile::new(*p, *s)).collect();
        let classes: Vec<FileClass> = sources.iter().map(|(p, _)| classify(p).unwrap()).collect();
        let ws = Workspace::build(files, classes);
        let mut diags = Vec::new();
        let report = analyze(&ws, &mut diags);
        (report, diags)
    }

    const TWO_LOCKS: &str =
        "struct A { m: Mutex<u32> }\nstruct B { n: Mutex<u32> }\nstruct S { a: A, b: B }\n";

    #[test]
    fn consistent_order_produces_edges_but_no_cycle() {
        let src = format!(
            "{TWO_LOCKS}impl S {{\n  fn one(&self) {{ let g = self.a.m.lock(); let h = self.b.n.lock(); }}\n  fn two(&self) {{ let g = self.a.m.lock(); let h = self.b.n.lock(); }}\n}}\n"
        );
        let (report, diags) = run(&[("crates/serve/src/lib.rs", src.as_str())]);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(report.locks, vec!["serve::A.m", "serve::B.n"]);
        assert!(report.edges.iter().all(|e| e.held == "serve::A.m" && e.acquired == "serve::B.n"));
        assert!(report.cycles.is_empty());
    }

    #[test]
    fn seeded_deadlock_cycle_is_caught() {
        let src = format!(
            "{TWO_LOCKS}impl S {{\n  fn ab(&self) {{ let g = self.a.m.lock(); let h = self.b.n.lock(); }}\n  fn ba(&self) {{ let h = self.b.n.lock(); let g = self.a.m.lock(); }}\n}}\n"
        );
        let (report, diags) = run(&[("crates/serve/src/lib.rs", src.as_str())]);
        assert_eq!(report.cycles, vec![vec!["serve::A.m".to_string(), "serve::B.n".to_string()]]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].lint, lint::LOCK_ORDER);
        assert!(diags[0].message.contains("lock-order cycle"), "{}", diags[0].message);
    }

    #[test]
    fn cross_function_cycle_through_calls_is_caught() {
        let src = format!(
            "{TWO_LOCKS}impl S {{\n  fn ab(&self) {{ let g = self.a.m.lock(); self.take_b(); }}\n  fn take_b(&self) {{ let h = self.b.n.lock(); }}\n  fn ba(&self) {{ let h = self.b.n.lock(); self.take_a(); }}\n  fn take_a(&self) {{ let g = self.a.m.lock(); }}\n}}\n"
        );
        let (report, diags) = run(&[("crates/serve/src/lib.rs", src.as_str())]);
        assert_eq!(report.cycles.len(), 1, "{:?}", report.edges);
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn drop_and_block_scoping_end_the_hold_region() {
        // `ab` drops the first guard before the second lock; `scoped`
        // confines the guard to an inner block. Neither orders A before B.
        let src = format!(
            "{TWO_LOCKS}impl S {{\n  fn ab(&self) {{ let g = self.a.m.lock(); drop(g); let h = self.b.n.lock(); }}\n  fn scoped(&self) {{ {{ let g = self.a.m.lock(); }} let h = self.b.n.lock(); }}\n  fn ba(&self) {{ let h = self.b.n.lock(); let g = self.a.m.lock(); }}\n}}\n"
        );
        let (report, diags) = run(&[("crates/serve/src/lib.rs", src.as_str())]);
        assert!(diags.is_empty(), "{diags:?}");
        assert!(report.cycles.is_empty(), "{:?}", report.edges);
    }

    #[test]
    fn temporaries_hold_only_to_the_statement_end() {
        let src = format!(
            "{TWO_LOCKS}impl S {{\n  fn ab(&self) {{ *self.a.m.lock() += 1; let h = self.b.n.lock(); }}\n  fn ba(&self) {{ let h = self.b.n.lock(); drop(h); *self.a.m.lock() += 1; }}\n}}\n"
        );
        let (report, diags) = run(&[("crates/serve/src/lib.rs", src.as_str())]);
        assert!(diags.is_empty(), "{diags:?}");
        assert!(report.cycles.is_empty(), "{:?}", report.edges);
    }

    #[test]
    fn relocking_the_same_mutex_is_a_self_deadlock() {
        let src = "struct A { m: Mutex<u32> }\nimpl A {\n  fn re(&self) { let g = self.m.lock(); let h = self.m.lock(); }\n}\n";
        let (report, diags) = run(&[("crates/parallel/src/lib.rs", src)]);
        assert_eq!(report.cycles, vec![vec!["parallel::A.m".to_string()]]);
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn guard_returning_wrappers_charge_the_caller() {
        let src = "struct Inner { v: u32 }\nstruct Q { inner: Mutex<Inner> }\nstruct B { n: Mutex<u32> }\nstruct S { q: Q, b: B }\nimpl Q { fn lock_inner(&self) -> MutexGuard<Inner> { self.inner.lock() } }\nimpl S {\n  fn ab(&self) { let g = self.q.lock_inner(); let h = self.b.n.lock(); }\n  fn ba(&self) { let h = self.b.n.lock(); let g = self.q.lock_inner(); }\n}\n";
        let (report, diags) = run(&[("crates/serve/src/lib.rs", src)]);
        assert_eq!(report.cycles.len(), 1, "{:?}", report.edges);
        assert!(report.cycles[0].contains(&"serve::Q.inner".to_string()), "{:?}", report.cycles);
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn out_of_scope_crates_are_ignored() {
        let src = "struct A { m: Mutex<u32> }\nimpl A { fn re(&self) { let g = self.m.lock(); let h = self.m.lock(); } }\n";
        let (report, diags) = run(&[("crates/linalg/src/lib.rs", src)]);
        assert!(report.locks.is_empty());
        assert!(diags.is_empty());
    }
}
