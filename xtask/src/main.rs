#![deny(unsafe_code)]
//! `cargo xtask` — workspace automation. Two subcommands:
//!
//! ```text
//! cargo xtask lint                   # run all lint families and analysis passes
//! cargo xtask lint --update-baseline # re-ratchet the panic + reach baselines downward
//! cargo xtask lint --unsafe-report   # print the unsafe-site inventory
//! cargo xtask lint --verbose         # also show allowlist-suppressed findings
//! cargo xtask lint --time-budget-secs N # fail if the analysis itself took >= N seconds
//!
//! cargo xtask benchcheck                    # gate fresh BENCH_*.json against the baseline
//! cargo xtask benchcheck --dir target/bench # manifests live elsewhere
//! cargo xtask benchcheck --update-baseline  # re-record baseline values from fresh manifests
//!
//! cargo xtask accuracycheck                 # gate BENCH_accuracy.json against the accuracy baseline
//! cargo xtask accuracycheck --dir DIR       # manifest lives elsewhere
//! cargo xtask accuracycheck --update-baseline # re-record accuracy baseline from a fresh manifest
//!
//! cargo xtask metrics-doc            # diff emitted metric names against TELEMETRY.md
//! ```
//!
//! See STATIC_ANALYSIS.md for what each lint enforces and why, and
//! PERFORMANCE.md for the benchcheck workflow.

use std::process::ExitCode;

const USAGE: &str = "usage: cargo xtask lint [--update-baseline] [--unsafe-report] [--verbose] [--time-budget-secs N]\n       cargo xtask benchcheck [--dir DIR] [--update-baseline]\n       cargo xtask accuracycheck [--dir DIR] [--update-baseline]\n       cargo xtask metrics-doc";

/// One manifest-vs-baseline gate: `benchcheck` and `accuracycheck` are
/// the same machinery pointed at different committed baselines.
struct Gate {
    /// Subcommand name, used in diagnostics.
    name: &'static str,
    /// Workspace-relative path of the committed baseline.
    baseline_path: &'static str,
    /// Header comment re-emitted on `--update-baseline`.
    comment: &'static str,
}

const BENCH_GATE: Gate = Gate {
    name: "benchcheck",
    baseline_path: xtask::benchcheck::BENCH_BASELINE_PATH,
    comment: xtask::benchcheck::BENCH_BASELINE_COMMENT,
};

const ACCURACY_GATE: Gate = Gate {
    name: "accuracycheck",
    baseline_path: xtask::benchcheck::ACCURACY_BASELINE_PATH,
    comment: xtask::benchcheck::ACCURACY_BASELINE_COMMENT,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("benchcheck") => gatecheck(&BENCH_GATE, &args[1..]),
        Some("accuracycheck") => gatecheck(&ACCURACY_GATE, &args[1..]),
        Some("metrics-doc") => metrics_doc(&args[1..]),
        Some(other) => {
            eprintln!("xtask: unknown subcommand `{other}`\n\n{USAGE}");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn metrics_doc(flags: &[String]) -> ExitCode {
    if let Some(other) = flags.first() {
        eprintln!("xtask metrics-doc: unknown flag `{other}`\n\n{USAGE}");
        return ExitCode::FAILURE;
    }
    let root = xtask::workspace_root();
    match xtask::metricsdoc::run_metrics_doc(&root) {
        Ok(outcome) if outcome.is_clean() => {
            println!(
                "xtask metrics-doc: ok — {} emission site(s) covered by {} documented name(s)",
                outcome.code.len(),
                outcome.doc.len()
            );
            ExitCode::SUCCESS
        }
        Ok(outcome) => {
            for failure in &outcome.failures {
                eprintln!("error    [metrics-doc] {failure}");
            }
            eprintln!(
                "xtask metrics-doc: {} failure(s) — update {} (or the emitting code)",
                outcome.failures.len(),
                xtask::metricsdoc::DOC_PATH
            );
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("xtask metrics-doc: {err}");
            ExitCode::FAILURE
        }
    }
}

fn gatecheck(gate: &Gate, flags: &[String]) -> ExitCode {
    let name = gate.name;
    let mut update_baseline = false;
    let mut dir = std::path::PathBuf::from(".");
    let mut iter = flags.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--update-baseline" => update_baseline = true,
            "--dir" => match iter.next() {
                Some(d) => dir = std::path::PathBuf::from(d),
                None => {
                    eprintln!("xtask {name}: --dir expects a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("xtask {name}: unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let root = xtask::workspace_root();
    let baseline_path = root.join(gate.baseline_path);
    let checks = match std::fs::read_to_string(&baseline_path)
        .map_err(|e| format!("cannot read {}: {e}", baseline_path.display()))
        .and_then(|text| xtask::benchcheck::parse_baseline_at(gate.baseline_path, &text))
    {
        Ok(checks) => checks,
        Err(err) => {
            eprintln!("xtask {name}: {err}");
            return ExitCode::FAILURE;
        }
    };

    let results = xtask::benchcheck::run_checks(&dir, &checks);
    print!("{}", xtask::benchcheck::format_table_for(name, &results));

    if update_baseline {
        return match xtask::benchcheck::render_updated_baseline_with_comment(&results, gate.comment)
            .and_then(|text| {
                std::fs::write(&baseline_path, text)
                    .map_err(|e| format!("cannot write {}: {e}", baseline_path.display()))
            }) {
            Ok(()) => {
                eprintln!("xtask {name}: baseline rewritten at {}", baseline_path.display());
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("xtask {name}: {err}");
                ExitCode::FAILURE
            }
        };
    }

    if results.iter().all(|r| r.ok) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn lint(flags: &[String]) -> ExitCode {
    let mut update_baseline = false;
    let mut unsafe_report = false;
    let mut verbose = false;
    let mut time_budget_secs: Option<u64> = None;
    let mut iter = flags.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--update-baseline" => update_baseline = true,
            "--unsafe-report" => unsafe_report = true,
            "--verbose" => verbose = true,
            "--time-budget-secs" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(secs) => time_budget_secs = Some(secs),
                None => {
                    eprintln!("xtask lint: --time-budget-secs expects a number of seconds");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("xtask lint: unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let started = std::time::Instant::now();
    let root = xtask::workspace_root();
    let outcome = match xtask::run_workspace_lint(&root) {
        Ok(outcome) => outcome,
        Err(err) => {
            eprintln!("xtask lint: {err}");
            return ExitCode::FAILURE;
        }
    };
    let duration = started.elapsed();

    // Emit the machine-readable report for CI regardless of the verdict.
    let report_path = root.join(xtask::REPORT_PATH);
    let duration_ms = u64::try_from(duration.as_millis()).unwrap_or(u64::MAX);
    let rendered = xtask::report::render(&outcome, duration_ms);
    if let Some(dir) = report_path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(err) = std::fs::write(&report_path, rendered) {
        eprintln!("xtask lint: cannot write {}: {err}", report_path.display());
        return ExitCode::FAILURE;
    }

    // The runtime budget keeps analysis growth from slowing the CI gate
    // unnoticed; it gates the analysis itself, not subprocesses.
    if let Some(budget) = time_budget_secs {
        if duration.as_secs() >= budget {
            eprintln!(
                "xtask lint: analysis took {:.1}s, over the {budget}s budget — profile the \
                 passes or raise the budget deliberately in CI",
                duration.as_secs_f64()
            );
            return ExitCode::FAILURE;
        }
    }

    if unsafe_report {
        print!("{}", xtask::format_unsafe_report(&outcome.unsafe_inventory));
        return if outcome.unsafe_inventory.iter().all(|s| s.documented) {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    if update_baseline {
        match xtask::update_baseline(&root, &outcome) {
            Ok(_) => {
                eprintln!(
                    "xtask lint: baselines rewritten at {} and {}",
                    xtask::BASELINE_PATH,
                    xtask::REACH_BASELINE_PATH
                );
                // Re-run against the fresh baseline so the exit code
                // reflects the post-update state.
                return match xtask::run_workspace_lint(&root) {
                    Ok(after) => {
                        print!("{}", xtask::format_report(&after, verbose));
                        if after.is_clean() {
                            ExitCode::SUCCESS
                        } else {
                            ExitCode::FAILURE
                        }
                    }
                    Err(err) => {
                        eprintln!("xtask lint: {err}");
                        ExitCode::FAILURE
                    }
                };
            }
            Err(err) => {
                eprintln!("xtask lint: {err}");
                return ExitCode::FAILURE;
            }
        }
    }

    print!("{}", xtask::format_report(&outcome, verbose));
    if outcome.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
