#![deny(unsafe_code)]
//! `cargo xtask` — workspace automation. Currently one subcommand:
//!
//! ```text
//! cargo xtask lint                   # run all lint families, exit 1 on violations
//! cargo xtask lint --update-baseline # re-ratchet the panic baseline downward
//! cargo xtask lint --unsafe-report   # print the unsafe-site inventory
//! cargo xtask lint --verbose         # also show allowlist-suppressed findings
//! ```
//!
//! See STATIC_ANALYSIS.md for what each lint enforces and why.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some(other) => {
            eprintln!("xtask: unknown subcommand `{other}`\n\nusage: cargo xtask lint [--update-baseline] [--unsafe-report] [--verbose]");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask lint [--update-baseline] [--unsafe-report] [--verbose]");
            ExitCode::FAILURE
        }
    }
}

fn lint(flags: &[String]) -> ExitCode {
    let mut update_baseline = false;
    let mut unsafe_report = false;
    let mut verbose = false;
    for flag in flags {
        match flag.as_str() {
            "--update-baseline" => update_baseline = true,
            "--unsafe-report" => unsafe_report = true,
            "--verbose" => verbose = true,
            other => {
                eprintln!("xtask lint: unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let root = xtask::workspace_root();
    let outcome = match xtask::run_workspace_lint(&root) {
        Ok(outcome) => outcome,
        Err(err) => {
            eprintln!("xtask lint: {err}");
            return ExitCode::FAILURE;
        }
    };

    if unsafe_report {
        print!("{}", xtask::format_unsafe_report(&outcome.unsafe_inventory));
        return if outcome.unsafe_inventory.iter().all(|s| s.documented) {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    if update_baseline {
        match xtask::update_baseline(&root, &outcome) {
            Ok(_) => {
                eprintln!("xtask lint: baseline rewritten at {}", xtask::BASELINE_PATH);
                // Re-run against the fresh baseline so the exit code
                // reflects the post-update state.
                return match xtask::run_workspace_lint(&root) {
                    Ok(after) => {
                        print!("{}", xtask::format_report(&after, verbose));
                        if after.is_clean() {
                            ExitCode::SUCCESS
                        } else {
                            ExitCode::FAILURE
                        }
                    }
                    Err(err) => {
                        eprintln!("xtask lint: {err}");
                        ExitCode::FAILURE
                    }
                };
            }
            Err(err) => {
                eprintln!("xtask lint: {err}");
                return ExitCode::FAILURE;
            }
        }
    }

    print!("{}", xtask::format_report(&outcome, verbose));
    if outcome.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
