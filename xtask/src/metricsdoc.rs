//! `cargo xtask metrics-doc` — drift check between the metric names the
//! code emits and the names TELEMETRY.md documents.
//!
//! The extractor walks every workspace source (excluding the telemetry
//! crate itself, whose examples and tests use throwaway demo names, and
//! excluding test code) for `telemetry::counter/gauge/observe/event/span`
//! call sites and reads the metric-name argument:
//!
//! * a plain string literal is taken verbatim;
//! * a `format!("…{placeholder}…")` literal becomes a `*` pattern
//!   (`parallel.{name}.speedup` → `parallel.*.speedup`);
//! * anything else is a violation — dynamic names defeat the check, so
//!   they are banned outside the telemetry crate;
//! * span names are recorded with the `.seconds` suffix their duration
//!   histogram carries in the manifest.
//!
//! The documented side is every backticked lowercase dotted token between
//! the `<!-- metrics-doc:begin -->` / `<!-- metrics-doc:end -->` markers
//! in TELEMETRY.md. Documented names may themselves be `*` patterns. The
//! check fails in **both** directions: an emitted name no documented
//! pattern covers, and a documented name no emission site matches.

use std::path::Path;

use crate::scanner::{find_from, ScannedFile};

/// Relative path of the documentation file holding the metric tables.
pub const DOC_PATH: &str = "TELEMETRY.md";
/// Opens a documented-metrics region in [`DOC_PATH`].
pub const BEGIN_MARKER: &str = "<!-- metrics-doc:begin -->";
/// Closes a documented-metrics region in [`DOC_PATH`].
pub const END_MARKER: &str = "<!-- metrics-doc:end -->";

/// The emitting functions and the kind each records under.
const EMITTERS: &[(&str, &str)] = &[
    ("counter", "counter"),
    ("gauge", "gauge"),
    ("observe", "histogram"),
    ("event", "event"),
    ("span_with_parent", "span"),
    ("span", "span"),
];

/// One metric-name emission site found in the source tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeMetric {
    /// Emitted name; `*` marks a `format!` placeholder.
    pub name: String,
    /// counter | gauge | histogram | event | span.
    pub kind: &'static str,
    /// Workspace-relative path of the call site.
    pub path: String,
    /// 1-based line of the call site.
    pub line: usize,
}

/// One documented metric name (possibly a `*` pattern) from TELEMETRY.md.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocMetric {
    /// Documented name or `*` pattern.
    pub name: String,
    /// 1-based line in the doc.
    pub line: usize,
}

/// Everything one metrics-doc run produced.
#[derive(Debug, Default)]
pub struct MetricsDocOutcome {
    /// Every emission site found in the sources.
    pub code: Vec<CodeMetric>,
    /// Every documented name between the markers.
    pub doc: Vec<DocMetric>,
    /// Human-readable failures; empty means code and doc agree.
    pub failures: Vec<String>,
}

impl MetricsDocOutcome {
    /// Whether the check passed.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Files whose emissions are exempt: the telemetry crate's own sources
/// (doctests and unit tests emit demo names) and anything outside
/// `crates/` and the workspace `examples/` (xtask and vendored code emit
/// nothing by policy).
fn exempt(path: &str) -> bool {
    if path.starts_with("crates/telemetry/") {
        return true;
    }
    !(path.starts_with("crates/") || path.starts_with("examples/"))
}

/// Extracts every metric-name emission from the given sources. Call sites
/// whose name is not a (possibly `format!`-wrapped) string literal land in
/// `problems`.
pub fn extract_code_metrics(sources: &[(String, String)]) -> (Vec<CodeMetric>, Vec<String>) {
    let mut code = Vec::new();
    let mut problems = Vec::new();
    for (path, text) in sources {
        if exempt(path) {
            continue;
        }
        let file = ScannedFile::new(path.clone(), text.clone());
        for &(func, kind) in EMITTERS {
            let needle = format!("telemetry::{func}(");
            let mut from = 0;
            while let Some(pos) = find_from(&file.masked, needle.as_bytes(), from) {
                from = pos + needle.len();
                if file.in_test_code(pos) {
                    continue;
                }
                let line = file.line_of(pos);
                match parse_name(&file.raw, pos + needle.len()) {
                    Ok(mut name) => {
                        if kind == "span" {
                            name.push_str(".seconds");
                        }
                        code.push(CodeMetric { name, kind, path: path.clone(), line });
                    }
                    Err(why) => problems.push(format!(
                        "{path}:{line} telemetry::{func} name is not checkable: {why}"
                    )),
                }
            }
        }
    }
    (code, problems)
}

/// Reads the metric-name argument starting at byte `start` of `raw` (just
/// past the opening parenthesis). Accepts `"lit"`, `&format!("lit", …)`
/// and `format!("lit", …)`; `{…}` placeholders become `*`.
fn parse_name(raw: &str, start: usize) -> Result<String, String> {
    let bytes = raw.as_bytes();
    let mut i = start;
    let skip_ws = |i: &mut usize| {
        while *i < bytes.len() && bytes[*i].is_ascii_whitespace() {
            *i += 1;
        }
    };
    skip_ws(&mut i);
    if bytes.get(i) == Some(&b'&') {
        i += 1;
        skip_ws(&mut i);
    }
    let mut is_format = false;
    if raw[i..].starts_with("format!") {
        is_format = true;
        i += "format!".len();
        skip_ws(&mut i);
        if bytes.get(i) != Some(&b'(') {
            return Err("format! without parentheses".to_string());
        }
        i += 1;
        skip_ws(&mut i);
    }
    if bytes.get(i) != Some(&b'"') {
        return Err("first argument must be a string literal (or format! of one)".to_string());
    }
    i += 1;
    let mut literal = String::new();
    while i < bytes.len() && bytes[i] != b'"' {
        if bytes[i] == b'\\' && i + 1 < bytes.len() {
            return Err("escape sequences are not supported in metric names".to_string());
        }
        literal.push(bytes[i] as char);
        i += 1;
    }
    if i >= bytes.len() {
        return Err("unterminated string literal".to_string());
    }
    if !is_format {
        return Ok(literal);
    }
    // format! literal: collapse each `{…}` placeholder to a `*` wildcard.
    let mut out = String::new();
    let mut chars = literal.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '{' if chars.peek() == Some(&'{') => {
                chars.next();
                out.push('{');
            }
            '}' if chars.peek() == Some(&'}') => {
                chars.next();
                out.push('}');
            }
            '{' => {
                for inner in chars.by_ref() {
                    if inner == '}' {
                        break;
                    }
                }
                out.push('*');
            }
            _ => out.push(c),
        }
    }
    Ok(out)
}

/// Extracts documented names: every backticked token made of
/// `[a-z0-9_.*]` containing a `.`, on lines between the begin/end
/// markers.
///
/// # Errors
///
/// Returns a message when the markers are absent or unbalanced.
pub fn extract_doc_metrics(doc: &str) -> Result<Vec<DocMetric>, String> {
    let mut out = Vec::new();
    let mut inside = false;
    let mut seen_any = false;
    for (idx, line) in doc.lines().enumerate() {
        let lineno = idx + 1;
        if line.contains(BEGIN_MARKER) {
            if inside {
                return Err(format!("{DOC_PATH}:{lineno}: nested {BEGIN_MARKER}"));
            }
            inside = true;
            seen_any = true;
            continue;
        }
        if line.contains(END_MARKER) {
            if !inside {
                return Err(format!("{DOC_PATH}:{lineno}: {END_MARKER} without begin"));
            }
            inside = false;
            continue;
        }
        if !inside {
            continue;
        }
        for token in backticked_tokens(line) {
            if token.contains('.')
                && token
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._*".contains(c))
            {
                out.push(DocMetric { name: token.to_string(), line: lineno });
            }
        }
    }
    if inside {
        return Err(format!("{DOC_PATH}: unterminated {BEGIN_MARKER}"));
    }
    if !seen_any {
        return Err(format!(
            "{DOC_PATH}: no {BEGIN_MARKER} marker — wrap the metric tables so \
             `cargo xtask metrics-doc` can find them"
        ));
    }
    Ok(out)
}

/// The backticked segments of a line (odd-indexed splits on `` ` ``).
fn backticked_tokens(line: &str) -> impl Iterator<Item = &str> {
    line.split('`').enumerate().filter_map(|(i, seg)| (i % 2 == 1).then_some(seg))
}

/// Glob match where `*` spans any (possibly empty) run of characters. The
/// text side is treated literally, so a code pattern like
/// `parallel.*.speedup` is covered by an identical documented pattern or
/// by a broader one such as `parallel.*`.
pub fn glob_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    // Iterative wildcard matcher with backtracking over the last `*`.
    let (mut pi, mut ti) = (0usize, 0usize);
    let (mut star, mut mark) = (usize::MAX, 0usize);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == t[ti]) && p[pi] != '*' {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = pi;
            mark = ti;
            pi += 1;
        } else if star != usize::MAX {
            pi = star + 1;
            mark += 1;
            ti = mark;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

/// Diffs the two sides, returning one failure line per drift. Undocumented
/// names are reported once (first emission site) even when emitted from
/// several places.
pub fn diff(code: &[CodeMetric], doc: &[DocMetric]) -> Vec<String> {
    let mut failures = Vec::new();
    let mut reported: Vec<&str> = Vec::new();
    for c in code {
        if reported.contains(&c.name.as_str()) {
            continue;
        }
        if !doc.iter().any(|d| glob_match(&d.name, &c.name)) {
            reported.push(&c.name);
            failures.push(format!(
                "{}:{} {} `{}` is not documented in {DOC_PATH}",
                c.path, c.line, c.kind, c.name
            ));
        }
    }
    for d in doc {
        if !code.iter().any(|c| glob_match(&d.name, &c.name)) {
            failures
                .push(format!("{DOC_PATH}:{} documents `{}` but nothing emits it", d.line, d.name));
        }
    }
    failures
}

/// Runs the full check against the workspace at `root`.
///
/// # Errors
///
/// Returns a message for I/O failures or a malformed doc (drift is
/// reported through [`MetricsDocOutcome::failures`], not as an error).
pub fn run_metrics_doc(root: &Path) -> Result<MetricsDocOutcome, String> {
    let sources = crate::collect_sources(root)?;
    let (code, mut failures) = extract_code_metrics(&sources);
    let doc_path = root.join(DOC_PATH);
    let doc_text = std::fs::read_to_string(&doc_path)
        .map_err(|e| format!("read {}: {e}", doc_path.display()))?;
    let doc = extract_doc_metrics(&doc_text)?;
    failures.extend(diff(&code, &doc));
    failures.sort();
    Ok(MetricsDocOutcome { code, doc, failures })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(path: &str, text: &str) -> (String, String) {
        (path.to_string(), text.to_string())
    }

    #[test]
    fn extracts_literals_spans_and_format_patterns() {
        let sources = vec![src(
            "crates/fdm/src/x.rs",
            r#"
            fn f(name: &str) {
                telemetry::counter("fdm.steps.count", 1);
                let _s = telemetry::span("fdm.solve");
                telemetry::gauge(&format!("parallel.{name}.speedup"), 1.0);
            }
            "#,
        )];
        let (code, problems) = extract_code_metrics(&sources);
        assert!(problems.is_empty(), "{problems:?}");
        let names: Vec<&str> = code.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["fdm.steps.count", "parallel.*.speedup", "fdm.solve.seconds"]);
        assert_eq!(code[2].kind, "span");
    }

    #[test]
    fn skips_test_code_telemetry_crate_and_comments() {
        let sources = vec![
            src(
                "crates/serve/src/x.rs",
                "//! demo: telemetry::gauge(\"doc.example\", 1.0)\n\
                 #[cfg(test)]\nmod tests { fn t() { telemetry::counter(\"test.only\", 1); } }\n",
            ),
            src("crates/telemetry/src/lib.rs", "fn f() { telemetry::gauge(\"demo.x\", 1.0); }\n"),
            src("xtask/src/x.rs", "fn f() { telemetry::gauge(\"xtask.x\", 1.0); }\n"),
        ];
        let (code, problems) = extract_code_metrics(&sources);
        assert!(code.is_empty(), "{code:?}");
        assert!(problems.is_empty(), "{problems:?}");
    }

    #[test]
    fn non_literal_names_are_problems() {
        let sources =
            vec![src("crates/serve/src/x.rs", "fn f(n: &str) { telemetry::gauge(n, 1.0); }\n")];
        let (code, problems) = extract_code_metrics(&sources);
        assert!(code.is_empty());
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("crates/serve/src/x.rs:1"), "{}", problems[0]);
    }

    #[test]
    fn doc_extraction_is_marker_scoped_and_charset_filtered() {
        let doc = "\
# Telemetry\n\
`outside.name` is ignored.\n\
<!-- metrics-doc:begin -->\n\
| `serve.queries` | counter | total |\n\
| `parallel.*` / `BENCH_serve.json` | gauge | timings |\n\
<!-- metrics-doc:end -->\n\
prose about `another.outside` here\n";
        let names: Vec<String> =
            extract_doc_metrics(doc).unwrap().into_iter().map(|d| d.name).collect();
        assert_eq!(names, ["serve.queries", "parallel.*"]);
    }

    #[test]
    fn missing_markers_and_unbalanced_markers_error() {
        assert!(extract_doc_metrics("# no markers\n").is_err());
        assert!(extract_doc_metrics("<!-- metrics-doc:begin -->\n").is_err());
        assert!(extract_doc_metrics("<!-- metrics-doc:end -->\n").is_err());
    }

    #[test]
    fn glob_match_semantics() {
        assert!(glob_match("serve.queries", "serve.queries"));
        assert!(glob_match("parallel.*", "parallel.matmul_320.speedup"));
        assert!(glob_match("parallel.*.speedup", "parallel.*.speedup"));
        assert!(glob_match("parallel.*", "parallel.*.speedup"));
        assert!(!glob_match("parallel.*.speedup", "parallel.threads"));
        assert!(!glob_match("serve.queries", "serve.queries_per_sec"));
    }

    #[test]
    fn diff_reports_both_directions_once_per_name() {
        let code = vec![
            CodeMetric {
                name: "a.x".into(),
                kind: "gauge",
                path: "crates/serve/src/x.rs".into(),
                line: 3,
            },
            CodeMetric {
                name: "a.x".into(),
                kind: "gauge",
                path: "crates/serve/src/y.rs".into(),
                line: 9,
            },
            CodeMetric {
                name: "b.y".into(),
                kind: "counter",
                path: "crates/fdm/src/x.rs".into(),
                line: 1,
            },
        ];
        let doc = vec![
            DocMetric { name: "b.y".into(), line: 10 },
            DocMetric { name: "c.stale".into(), line: 11 },
        ];
        let failures = diff(&code, &doc);
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(failures[0].contains("`a.x` is not documented"), "{}", failures[0]);
        assert!(failures[0].contains("x.rs:3"), "{}", failures[0]);
        assert!(failures[1].contains("`c.stale`"), "{}", failures[1]);
    }

    #[test]
    fn span_with_parent_sites_do_not_double_count() {
        let sources = vec![src(
            "crates/serve/src/x.rs",
            "fn f() { let _s = telemetry::span_with_parent(\"serve.worker\", None); }\n",
        )];
        let (code, problems) = extract_code_metrics(&sources);
        assert!(problems.is_empty(), "{problems:?}");
        assert_eq!(code.len(), 1, "{code:?}");
        assert_eq!(code[0].name, "serve.worker.seconds");
    }
}
