//! Panic-reachability: which public entry points can transitively hit a
//! panic-capable site.
//!
//! Seeds are the sites [`crate::lints::count_panic_sites`] already
//! inventories (so `expect("invariant: …")` and `debug_assert!` stay
//! exempt), attributed to their enclosing functions; reachability is a
//! reverse BFS over the conservative call graph. The verdict per public
//! entry point of the serving-facing crates is ratcheted in
//! `xtask/panic-reach-baseline.txt`: the set of panic-reaching entries can
//! only shrink. A new entry in the set fails as [`lint::PANIC_REACH`]; an
//! entry that stopped reaching panics fails as
//! [`lint::REACH_BASELINE_STALE`] until `--update-baseline` locks the
//! improvement in.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::Workspace;
use crate::lints::{self, lint, Diagnostic, FileKind};

/// Crates whose panic sites seed the reachability analysis: the ratcheted
/// library crates plus the thread pool (whose panic-propagation sites are
/// deliberate but still count as reachable panics for callers).
pub const REACH_PANIC_CRATES: &[&str] =
    &["linalg", "fdm", "nn", "autodiff", "core", "serve", "parallel"];

/// Crates whose `pub` functions count as analyzed entry points — the
/// serving stack a shard operator actually calls into, plus the FDM
/// reference solver now that CI's accuracy gate drives `solve_batch`
/// directly.
pub const ENTRY_CRATES: &[&str] = &["serve", "core", "parallel", "fdm"];

/// The reachability verdict for one public entry point.
#[derive(Debug, Clone)]
pub struct EntryVerdict {
    /// Qualified name, e.g. `serve::frontend::Frontend::submit`.
    pub qualified: String,
    /// Workspace-relative file declaring the entry.
    pub path: String,
    /// 1-based line of the declaration.
    pub line: usize,
    /// Whether a panic site is transitively reachable.
    pub reaches_panic: bool,
    /// A shortest witness path (qualified names, entry first, panicking
    /// function last); empty when `reaches_panic` is false.
    pub example_path: Vec<String>,
    /// The witness panic site (`path:line what`), when one exists.
    pub example_site: String,
}

/// The full reachability report.
#[derive(Debug, Clone, Default)]
pub struct ReachReport {
    /// Every entry point, sorted by qualified name.
    pub entries: Vec<EntryVerdict>,
}

impl ReachReport {
    /// Qualified names of entries that reach a panic.
    pub fn reaching(&self) -> BTreeSet<String> {
        self.entries.iter().filter(|e| e.reaches_panic).map(|e| e.qualified.clone()).collect()
    }
}

/// Runs the pass over a built workspace.
pub fn analyze(ws: &Workspace) -> ReachReport {
    // Attribute panic sites to their enclosing functions.
    let mut seed_site: BTreeMap<usize, String> = BTreeMap::new();
    for (file_idx, (file, class)) in ws.files.iter().zip(&ws.classes).enumerate() {
        if class.kind != FileKind::Library
            || !REACH_PANIC_CRATES.contains(&class.crate_name.as_str())
        {
            continue;
        }
        for site in lints::count_panic_sites(file) {
            let owner = ws.fns.iter().position(|f| {
                f.file == file_idx
                    && !f.is_test
                    && f.body.0 <= site.offset
                    && site.offset < f.body.1
            });
            if let Some(id) = owner {
                seed_site
                    .entry(id)
                    .or_insert_with(|| format!("{}:{} {}", file.path, site.line, site.what));
            }
        }
    }
    let seeds: BTreeSet<usize> = seed_site.keys().copied().collect();
    let hit = ws.reaches(&seeds);

    let mut entries = Vec::new();
    for (id, f) in ws.fns.iter().enumerate() {
        let class = &ws.classes[f.file];
        if !f.is_pub
            || f.is_test
            || class.kind != FileKind::Library
            || !ENTRY_CRATES.contains(&class.crate_name.as_str())
        {
            continue;
        }
        let file = &ws.files[f.file];
        let mut verdict = EntryVerdict {
            qualified: f.qualified(),
            path: file.path.clone(),
            line: file.line_of(f.sig.0),
            reaches_panic: hit[id],
            example_path: Vec::new(),
            example_site: String::new(),
        };
        if hit[id] {
            if let Some(path) = ws.path_to(id, &seeds) {
                verdict.example_site =
                    path.last().and_then(|last| seed_site.get(last)).cloned().unwrap_or_default();
                verdict.example_path =
                    path.into_iter().map(|fid| ws.fns[fid].qualified()).collect();
            }
        }
        entries.push(verdict);
    }
    entries.sort_by(|a, b| a.qualified.cmp(&b.qualified));
    entries.dedup_by(|a, b| a.qualified == b.qualified);
    ReachReport { entries }
}

/// Parses the reach baseline: one qualified entry name per line, `#`
/// comments and blanks ignored.
///
/// # Errors
///
/// Returns a message naming a malformed (whitespace-containing) line.
pub fn parse_baseline(text: &str) -> Result<BTreeSet<String>, String> {
    let mut set = BTreeSet::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.contains(char::is_whitespace) {
            return Err(format!(
                "reach baseline line {}: expected one qualified entry name, got {line:?}",
                idx + 1
            ));
        }
        set.insert(line.to_string());
    }
    Ok(set)
}

/// Renders the checked-in baseline from the current report.
pub fn render_baseline(report: &ReachReport) -> String {
    let mut out = String::from(
        "# Panic-reachability ratchet: public entry points of deepoheat-serve/core/parallel/fdm\n\
         # from which a panic-capable site is transitively reachable along the conservative\n\
         # call graph. The set may only shrink. Regenerate with\n\
         # `cargo xtask lint --update-baseline` after cutting a path; a new entry here\n\
         # fails `cargo xtask lint` as panic-reach.\n",
    );
    for name in report.reaching() {
        out.push_str(name.as_str());
        out.push('\n');
    }
    out
}

/// Ratchets the current report against the baseline. These diagnostics
/// bypass the allowlist, like the per-file panic ratchet.
pub fn check(report: &ReachReport, baseline: &BTreeSet<String>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for entry in &report.entries {
        if entry.reaches_panic && !baseline.contains(&entry.qualified) {
            out.push(Diagnostic {
                lint: lint::PANIC_REACH,
                path: entry.path.clone(),
                line: entry.line,
                message: format!(
                    "public entry `{}` newly reaches a panic site ({}) via {} — cut the path \
                     (typed error or `expect(\"invariant: …\")`) or re-ratchet deliberately",
                    entry.qualified,
                    entry.example_site,
                    entry.example_path.join(" -> "),
                ),
            });
        }
    }
    let current = report.reaching();
    let known: BTreeSet<&String> = report.entries.iter().map(|e| &e.qualified).collect();
    for name in baseline {
        if !current.contains(name) {
            let why = if known.contains(name) {
                "no longer reaches a panic"
            } else {
                "is gone or no longer public"
            };
            out.push(Diagnostic {
                lint: lint::REACH_BASELINE_STALE,
                path: crate::REACH_BASELINE_PATH.to_string(),
                line: 0,
                message: format!(
                    "baseline entry `{name}` {why}: run `cargo xtask lint --update-baseline` \
                     to lock the improvement in"
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::{classify, FileClass};
    use crate::scanner::ScannedFile;

    fn workspace(sources: &[(&str, &str)]) -> Workspace {
        let files: Vec<ScannedFile> =
            sources.iter().map(|(p, s)| ScannedFile::new(*p, *s)).collect();
        let classes: Vec<FileClass> = sources.iter().map(|(p, _)| classify(p).unwrap()).collect();
        Workspace::build(files, classes)
    }

    #[test]
    fn entry_reaching_a_panic_is_flagged_with_a_witness_path() {
        let ws = workspace(&[
            ("crates/serve/src/lib.rs", "pub fn submit() { deepoheat_core::eval::run(); }\n"),
            ("crates/core/src/eval.rs", "pub fn run() { helper(); }\nfn helper() { let v: Option<u32> = None; v.unwrap(); }\n"),
        ]);
        let report = analyze(&ws);
        let submit = report.entries.iter().find(|e| e.qualified == "serve::submit").unwrap();
        assert!(submit.reaches_panic);
        assert_eq!(
            submit.example_path,
            vec!["serve::submit", "core::eval::run", "core::eval::helper"]
        );
        assert!(submit.example_site.contains(".unwrap()"), "{}", submit.example_site);
    }

    #[test]
    fn invariant_expects_do_not_seed_reachability() {
        let ws = workspace(&[(
            "crates/serve/src/lib.rs",
            "pub fn ok(v: Option<u32>) -> u32 { v.expect(\"invariant: checked by caller\") }\n",
        )]);
        let report = analyze(&ws);
        assert!(report.entries.iter().all(|e| !e.reaches_panic), "{:?}", report.entries);
    }

    #[test]
    fn ratchet_flags_new_entries_and_stale_baseline_lines() {
        let ws = workspace(&[(
            "crates/serve/src/lib.rs",
            "pub fn hot() { panic!(\"boom\"); }\npub fn cold() {}\n",
        )]);
        let report = analyze(&ws);

        // Matching baseline: silent.
        assert!(check(&report, &parse_baseline("serve::hot\n").unwrap()).is_empty());

        // Empty baseline: the reaching entry is a new violation.
        let diags = check(&report, &BTreeSet::new());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].lint, lint::PANIC_REACH);
        assert!(diags[0].message.contains("serve::hot"), "{}", diags[0].message);

        // Baseline with a no-longer-reaching entry: stale.
        let stale = parse_baseline("serve::hot\nserve::cold\n").unwrap();
        let diags = check(&report, &stale);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].lint, lint::REACH_BASELINE_STALE);
    }

    #[test]
    fn baseline_round_trips() {
        let ws = workspace(&[("crates/serve/src/lib.rs", "pub fn hot() { panic!(\"x\"); }\n")]);
        let report = analyze(&ws);
        let text = render_baseline(&report);
        assert_eq!(parse_baseline(&text).unwrap(), report.reaching());
        assert!(parse_baseline("two words\n").is_err());
    }
}
