//! Renders `target/analysis-report.json`: the machine-readable summary of
//! a lint run that CI uploads as an artifact. Hand-rolled emission (the
//! crate is dependency-free); [`crate::json::parse`] round-trips it, which
//! the tests use as a well-formedness check.

use crate::LintOutcome;

/// Schema identifier embedded in the report so consumers can detect
/// format changes.
pub const SCHEMA: &str = "deepoheat-analysis-report/v1";

/// Renders the report document (pretty-printed, stable key order).
pub fn render(outcome: &LintOutcome, duration_ms: u64) -> String {
    let mut w = Writer::new();
    w.open('{');
    w.field("schema", &str_json(SCHEMA));
    w.field("duration_ms", &duration_ms.to_string());
    w.field("files_scanned", &outcome.files_scanned.to_string());
    w.field("functions", &outcome.functions.to_string());
    w.field("call_edges", &outcome.call_edges.to_string());
    w.field("clean", if outcome.is_clean() { "true" } else { "false" });

    w.key("violations");
    w.open('[');
    for d in &outcome.violations {
        w.item();
        w.open('{');
        w.field("lint", &str_json(d.lint));
        w.field("path", &str_json(&d.path));
        w.field("line", &d.line.to_string());
        w.field("message", &str_json(&d.message));
        w.close('}');
    }
    w.close(']');

    w.key("panic_ratchet");
    w.open('{');
    w.field("files", &outcome.panic_sites.len().to_string());
    let sites: usize = outcome.panic_sites.values().map(Vec::len).sum();
    w.field("sites", &sites.to_string());
    w.close('}');

    w.key("panic_reach");
    w.open('{');
    w.field("entry_points", &outcome.reach.entries.len().to_string());
    w.field("reaching", &outcome.reach.reaching().len().to_string());
    w.key("entries");
    w.open('[');
    for e in &outcome.reach.entries {
        w.item();
        w.open('{');
        w.field("entry", &str_json(&e.qualified));
        w.field("path", &str_json(&e.path));
        w.field("line", &e.line.to_string());
        w.field("reaches_panic", if e.reaches_panic { "true" } else { "false" });
        if e.reaches_panic {
            w.key("example_path");
            w.open('[');
            for step in &e.example_path {
                w.item();
                w.raw(&str_json(step));
            }
            w.close(']');
            w.field("example_site", &str_json(&e.example_site));
        }
        w.close('}');
    }
    w.close(']');
    w.close('}');

    w.key("lock_order");
    w.open('{');
    w.key("locks");
    w.open('[');
    for lock in &outcome.locks.locks {
        w.item();
        w.raw(&str_json(lock));
    }
    w.close(']');
    w.key("edges");
    w.open('[');
    for e in &outcome.locks.edges {
        w.item();
        w.open('{');
        w.field("held", &str_json(&e.held));
        w.field("acquired", &str_json(&e.acquired));
        w.field("holder", &str_json(&e.holder));
        w.field("path", &str_json(&e.path));
        w.field("line", &e.line.to_string());
        w.close('}');
    }
    w.close(']');
    w.key("cycles");
    w.open('[');
    for cycle in &outcome.locks.cycles {
        w.item();
        w.open('[');
        for lock in cycle {
            w.item();
            w.raw(&str_json(lock));
        }
        w.close(']');
    }
    w.close(']');
    w.close('}');

    w.close('}');
    w.out.push('\n');
    w.out
}

/// JSON string literal with the standard escapes.
fn str_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A tiny indenting JSON writer: tracks nesting and comma placement so
/// the emission code above stays declarative.
struct Writer {
    out: String,
    indent: usize,
    /// Whether the current container already has a member.
    has_member: Vec<bool>,
}

impl Writer {
    fn new() -> Self {
        Writer { out: String::new(), indent: 0, has_member: Vec::new() }
    }

    fn newline(&mut self) {
        self.out.push('\n');
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
    }

    /// Starts a member slot: comma + newline when needed.
    fn item(&mut self) {
        if let Some(has) = self.has_member.last_mut() {
            if *has {
                self.out.push(',');
            }
            *has = true;
        }
        if self.indent > 0 {
            self.newline();
        }
    }

    fn open(&mut self, bracket: char) {
        self.out.push(bracket);
        self.indent += 1;
        self.has_member.push(false);
    }

    fn close(&mut self, bracket: char) {
        let had = self.has_member.pop().unwrap_or(false);
        self.indent -= 1;
        if had {
            self.newline();
        }
        self.out.push(bracket);
    }

    fn key(&mut self, name: &str) {
        self.item();
        self.out.push_str(&str_json(name));
        self.out.push_str(": ");
    }

    fn raw(&mut self, value: &str) {
        self.out.push_str(value);
    }

    fn field(&mut self, name: &str, value: &str) {
        self.key(name);
        self.raw(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Json};
    use crate::lints::{lint, Diagnostic};

    #[test]
    fn report_round_trips_through_the_json_parser() {
        let mut outcome =
            LintOutcome { files_scanned: 3, functions: 7, call_edges: 9, ..Default::default() };
        outcome.violations.push(Diagnostic {
            lint: lint::FLOAT_EQ,
            path: "crates/core/src/x.rs".into(),
            line: 12,
            message: "exact \"float\" comparison\nwith a newline".into(),
        });
        outcome.locks.locks.push("serve::Queue.inner".into());
        let text = render(&outcome, 41);
        let doc = json::parse(&text).unwrap_or_else(|e| panic!("invalid JSON: {e}\n{text}"));
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(doc.get("duration_ms").and_then(Json::as_f64), Some(41.0));
        assert_eq!(doc.get("clean"), Some(&Json::Bool(false)));
        let v = doc.get("violations").and_then(Json::as_arr).unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].get("line").and_then(Json::as_f64), Some(12.0));
        assert_eq!(
            doc.get_path(&["lock_order", "locks"]).and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
    }

    #[test]
    fn empty_outcome_renders_valid_json() {
        let text = render(&LintOutcome::default(), 0);
        let doc = json::parse(&text).unwrap_or_else(|e| panic!("invalid JSON: {e}\n{text}"));
        assert_eq!(doc.get("clean"), Some(&Json::Bool(true)));
        assert_eq!(doc.get_path(&["panic_reach", "entries"]).and_then(Json::as_arr), Some(&[][..]));
    }
}
