//! A lexer-free token scanner over Rust source text.
//!
//! The lint passes need three things a plain substring search cannot give
//! them: (1) occurrences inside comments, doc examples and string literals
//! must not count; (2) code under `#[cfg(test)]` / `#[test]` must be
//! separable from library code; (3) the unsafe-audit lint conversely needs
//! the *raw* comment text to find `// SAFETY:` justifications. So the
//! scanner produces a **masked** copy of the source — byte-for-byte the
//! same length, with every comment and literal body replaced by spaces —
//! alongside the raw text and the byte spans of test-only code.

/// A scanned source file: raw text, masked text, and test-code spans.
#[derive(Debug)]
pub struct ScannedFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// The file verbatim.
    pub raw: String,
    /// Same length as `raw`; bytes inside comments, string literals and
    /// char literals are replaced by `b' '` (newlines are preserved so
    /// offsets and line numbers stay aligned).
    pub masked: Vec<u8>,
    /// Byte ranges of `#[cfg(test)]` / `#[test]` items (attribute through
    /// the matching closing brace or terminating semicolon).
    pub test_spans: Vec<(usize, usize)>,
}

impl ScannedFile {
    /// Scans `raw`, computing the masked text and test spans.
    pub fn new(path: impl Into<String>, raw: impl Into<String>) -> Self {
        let raw = raw.into();
        let masked = mask_source(raw.as_bytes());
        let test_spans = find_test_spans(&masked);
        ScannedFile { path: path.into(), raw, masked, test_spans }
    }

    /// 1-based line number of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        let end = offset.min(self.raw.len());
        1 + self.raw.as_bytes()[..end].iter().filter(|&&b| b == b'\n').count()
    }

    /// Whether `offset` falls inside test-only code.
    pub fn in_test_code(&self, offset: usize) -> bool {
        self.test_spans.iter().any(|&(start, end)| offset >= start && offset < end)
    }

    /// The raw text of line `line` (1-based), without the newline.
    pub fn raw_line(&self, line: usize) -> &str {
        self.raw.lines().nth(line.saturating_sub(1)).unwrap_or("")
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(usize),
    Char,
}

/// Replaces the bodies of comments and literals with spaces, preserving
/// newlines and byte offsets. Handles nested block comments, escapes in
/// string/char literals, raw strings with any number of `#`s, byte and
/// raw-byte strings, and the `'lifetime`-vs-char-literal ambiguity.
pub fn mask_source(src: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(src.len());
    let mut state = State::Code;
    let mut i = 0;
    while i < src.len() {
        let b = src[i];
        let rest = &src[i..];
        match state {
            State::Code => {
                if rest.starts_with(b"//") {
                    state = State::LineComment;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if rest.starts_with(b"/*") {
                    state = State::BlockComment(1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if let Some(hashes) = raw_string_open(rest) {
                    // r"..", r#".."#, br".." — skip the prefix, mask the body.
                    let prefix = rest.iter().position(|&c| c == b'"').map_or(1, |p| p + 1);
                    state = State::RawStr(hashes);
                    out.extend(std::iter::repeat_n(b' ', prefix));
                    i += prefix;
                } else if b == b'"' || (b == b'b' && rest.get(1) == Some(&b'"')) {
                    let prefix = if b == b'b' { 2 } else { 1 };
                    state = State::Str;
                    out.extend(std::iter::repeat_n(b' ', prefix));
                    i += prefix;
                } else if b == b'\'' {
                    if is_lifetime(rest) {
                        out.push(b);
                        i += 1;
                    } else {
                        state = State::Char;
                        out.push(b' ');
                        i += 1;
                    }
                } else {
                    out.push(b);
                    i += 1;
                }
            }
            State::LineComment => {
                if b == b'\n' {
                    state = State::Code;
                    out.push(b'\n');
                } else {
                    out.push(b' ');
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if rest.starts_with(b"*/") {
                    state = if depth == 1 { State::Code } else { State::BlockComment(depth - 1) };
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if rest.starts_with(b"/*") {
                    state = State::BlockComment(depth + 1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            State::Str => {
                if b == b'\\' && i + 1 < src.len() {
                    // An escaped byte may be a newline (string line
                    // continuation) — preserve it so line numbers stay
                    // aligned downstream.
                    out.push(b' ');
                    out.push(if src[i + 1] == b'\n' { b'\n' } else { b' ' });
                    i += 2;
                } else if b == b'"' {
                    state = State::Code;
                    out.push(b' ');
                    i += 1;
                } else {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if b == b'"' && rest[1..].iter().take_while(|&&c| c == b'#').count() >= hashes {
                    state = State::Code;
                    out.extend(std::iter::repeat_n(b' ', 1 + hashes));
                    i += 1 + hashes;
                } else {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            State::Char => {
                if b == b'\\' && i + 1 < src.len() {
                    out.push(b' ');
                    out.push(if src[i + 1] == b'\n' { b'\n' } else { b' ' });
                    i += 2;
                } else if b == b'\'' {
                    state = State::Code;
                    out.push(b' ');
                    i += 1;
                } else {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
        }
    }
    out
}

/// Recognises the opening of a raw string literal (`r`/`br` + `#`* + `"`)
/// at the start of `rest`, returning the number of `#`s.
fn raw_string_open(rest: &[u8]) -> Option<usize> {
    let after_prefix = match rest {
        [b'r', tail @ ..] => tail,
        [b'b', b'r', tail @ ..] => tail,
        _ => return None,
    };
    let hashes = after_prefix.iter().take_while(|&&c| c == b'#').count();
    (after_prefix.get(hashes) == Some(&b'"')).then_some(hashes)
}

/// Distinguishes `'lifetime` (and `'_`) from a char literal at a `'`.
fn is_lifetime(rest: &[u8]) -> bool {
    match rest.get(1) {
        Some(&c) if c.is_ascii_alphabetic() || c == b'_' => {
            // 'x' is a char literal; 'xy (no closing quote soon) is a
            // lifetime. A lifetime is followed by a non-quote.
            rest.get(2) != Some(&b'\'')
        }
        _ => false,
    }
}

/// Byte spans of `#[cfg(test)]` and `#[test]` items in masked text: from
/// the attribute to the matching `}` of the first brace-delimited block
/// (or the first `;` for brace-less items).
fn find_test_spans(masked: &[u8]) -> Vec<(usize, usize)> {
    let mut spans: Vec<(usize, usize)> = Vec::new();
    for attr in [&b"#[cfg(test)]"[..], &b"#[test]"[..]] {
        let mut from = 0;
        while let Some(pos) = find_from(masked, attr, from) {
            from = pos + attr.len();
            if spans.iter().any(|&(s, e)| pos >= s && pos < e) {
                continue; // nested inside an already-recorded span
            }
            if let Some(end) = item_end(masked, pos + attr.len()) {
                spans.push((pos, end));
            }
        }
    }
    spans.sort_unstable();
    spans
}

/// Finds the end of the item starting after an attribute: the byte after
/// the matching `}` of its first block, or after a `;` seen before any
/// `{`. Returns `None` for an unterminated item (truncated source).
fn item_end(masked: &[u8], mut i: usize) -> Option<usize> {
    while i < masked.len() {
        match masked[i] {
            b'{' => {
                let mut depth = 1usize;
                i += 1;
                while i < masked.len() {
                    match masked[i] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                return Some(i + 1);
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                return None;
            }
            b';' => return Some(i + 1),
            _ => i += 1,
        }
    }
    None
}

/// `memmem` from `start`: offset of the first occurrence of `needle`.
pub fn find_from(haystack: &[u8], needle: &[u8], start: usize) -> Option<usize> {
    if needle.is_empty() || start >= haystack.len() {
        return None;
    }
    haystack[start..].windows(needle.len()).position(|w| w == needle).map(|p| p + start)
}

/// Offsets of whole-word occurrences of identifier `word` in `masked`
/// (bounded by non-identifier bytes on both sides).
pub fn word_offsets(masked: &[u8], word: &str) -> Vec<usize> {
    let needle = word.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = find_from(masked, needle, from) {
        from = pos + 1;
        let before_ok = pos == 0 || !is_ident_byte(masked[pos - 1]);
        let after_ok =
            pos + needle.len() >= masked.len() || !is_ident_byte(masked[pos + needle.len()]);
        if before_ok && after_ok {
            out.push(pos);
        }
    }
    out
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_and_block_comments() {
        let m = mask_source(b"a // unwrap()\nb /* panic! */ c");
        assert_eq!(m, *b"a            \nb              c");
    }

    #[test]
    fn masks_nested_block_comments() {
        let m = mask_source(b"x /* a /* b */ c */ y");
        assert_eq!(String::from_utf8(m).unwrap().trim(), "x                   y".trim());
    }

    #[test]
    fn masks_string_bodies_including_escapes() {
        let m = mask_source(br#"f("has \" unwrap()") + g"#);
        let s = String::from_utf8(m).unwrap();
        assert!(!s.contains("unwrap"));
        assert!(s.contains("f(")); // code outside the literal survives
        assert!(s.contains("+ g"));
    }

    #[test]
    fn masks_raw_strings_with_hashes() {
        let m = mask_source(br##"let x = r#"panic!("inner")"# ; done"##);
        let s = String::from_utf8(m).unwrap();
        assert!(!s.contains("panic"));
        assert!(s.contains("let x ="));
        assert!(s.contains("; done"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = b"fn f<'a>(x: &'a str) -> char { 'x' }";
        let m = mask_source(src);
        let s = String::from_utf8(m).unwrap();
        assert!(s.contains("<'a>"), "{s}");
        assert!(s.contains("&'a str"), "{s}");
        assert!(!s.contains("'x'"), "{s}");
    }

    #[test]
    fn test_spans_cover_cfg_test_modules() {
        let src = "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\nfn tail() {}\n";
        let f = ScannedFile::new("a.rs", src);
        let lib_off = src.find("x.unwrap").unwrap();
        let test_off = src.find("y.unwrap").unwrap();
        let tail_off = src.find("fn tail").unwrap();
        assert!(!f.in_test_code(lib_off));
        assert!(f.in_test_code(test_off));
        assert!(!f.in_test_code(tail_off));
    }

    #[test]
    fn test_spans_cover_test_fns_outside_modules() {
        let src = "#[test]\nfn t() { y.unwrap(); }\nfn lib() {}\n";
        let f = ScannedFile::new("a.rs", src);
        assert!(f.in_test_code(src.find("y.unwrap").unwrap()));
        assert!(!f.in_test_code(src.find("fn lib").unwrap()));
    }

    #[test]
    fn escaped_newlines_in_strings_preserve_line_numbers() {
        // A `\`-newline line continuation must keep its newline in the
        // masked output, or every later line number shifts by one.
        let src = "let s = \"a \\\n   b\";\nfn f() {}\n";
        let m = mask_source(src.as_bytes());
        assert_eq!(m.len(), src.len());
        assert_eq!(
            m.iter().filter(|&&b| b == b'\n').count(),
            src.bytes().filter(|&b| b == b'\n').count()
        );
        let f = ScannedFile::new("a.rs", src);
        assert_eq!(f.line_of(src.find("fn f").unwrap()), 3);
    }

    #[test]
    fn word_offsets_respect_identifier_boundaries() {
        let masked = b"Instant InstantX MyInstant Instant";
        let hits = word_offsets(masked, "Instant");
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0], 0);
    }

    #[test]
    fn line_numbers_are_one_based() {
        let f = ScannedFile::new("a.rs", "a\nb\nc");
        assert_eq!(f.line_of(0), 1);
        assert_eq!(f.line_of(2), 2);
        assert_eq!(f.line_of(4), 3);
        assert_eq!(f.raw_line(2), "b");
    }
}
