//! Fixture-driven tests of the analysis engine's middle layers: the toy
//! crate in `tests/fixtures/call_graph_toy.rs` goes in, exact call edges
//! and reachability verdicts come out.

use std::collections::BTreeSet;

use xtask::callgraph::Workspace;
use xtask::lints::classify;
use xtask::scanner::ScannedFile;

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read fixture {path}: {e}"))
}

fn toy_workspace(at_path: &str) -> Workspace {
    let file = ScannedFile::new(at_path, fixture("call_graph_toy.rs"));
    let class = classify(at_path).expect("classifiable path");
    Workspace::build(vec![file], vec![class])
}

fn edges(ws: &Workspace, from: &str) -> Vec<String> {
    let id = ws.fn_by_qualified(from).unwrap_or_else(|| panic!("no fn {from}"));
    ws.edges[id].iter().map(|&t| ws.fns[t].qualified()).collect()
}

#[test]
fn toy_crate_produces_exactly_the_expected_edges() {
    let ws = toy_workspace("crates/core/src/pool.rs");
    // 5 functions, 3 edges — nothing spurious, nothing missed.
    assert_eq!(ws.fns.len(), 5);
    assert_eq!(ws.edge_count(), 3);
    // `self.queue` types to `Queue` through the struct field, so `run`
    // resolves to exactly `Queue::deepest` — not every `deepest`.
    assert_eq!(edges(&ws, "core::pool::Pool::run"), vec!["core::pool::Queue::deepest"]);
    assert_eq!(edges(&ws, "core::pool::Queue::deepest"), vec!["core::pool::boom"]);
    assert_eq!(edges(&ws, "core::pool::Pool::idle"), vec!["core::pool::quiet"]);
    assert!(edges(&ws, "core::pool::boom").is_empty());
}

#[test]
fn reachability_verdicts_follow_the_call_chain() {
    let ws = toy_workspace("crates/core/src/pool.rs");
    let boom = ws.fn_by_qualified("core::pool::boom").expect("boom exists");
    let seeds: BTreeSet<usize> = [boom].into_iter().collect();
    let reach = ws.reaches(&seeds);

    let verdict = |name: &str| reach[ws.fn_by_qualified(name).expect("fn exists")];
    assert!(verdict("core::pool::Pool::run"), "run -> deepest -> boom");
    assert!(verdict("core::pool::Queue::deepest"));
    assert!(!verdict("core::pool::Pool::idle"), "idle only calls quiet");
    assert!(!verdict("core::pool::quiet"));

    // And the witness path is the shortest chain.
    let run = ws.fn_by_qualified("core::pool::Pool::run").expect("run exists");
    let path = ws.path_to(run, &seeds).expect("path exists");
    let names: Vec<String> = path.iter().map(|&id| ws.fns[id].qualified()).collect();
    assert_eq!(
        names,
        vec!["core::pool::Pool::run", "core::pool::Queue::deepest", "core::pool::boom"]
    );
}
