//! Fixture: a toy crate with one typed method chain, one free call, and
//! one panic leaf, for exact-edge call-graph assertions. Never compiled.

pub struct Pool {
    queue: Queue,
}

pub struct Queue {
    depth: u64,
}

impl Queue {
    fn deepest(&self) -> u64 {
        boom(self.depth)
    }
}

impl Pool {
    pub fn run(&self) -> u64 {
        self.queue.deepest()
    }

    pub fn idle(&self) -> u64 {
        quiet()
    }
}

fn boom(d: u64) -> u64 {
    assert!(d > 0, "depth");
    d
}

fn quiet() -> u64 {
    0
}
