//! Fixture: hash-order-sensitive container in a result-producing crate.
//! Never compiled.

use std::collections::HashMap;

pub fn tally(keys: &[u32]) -> HashMap<u32, usize> {
    let mut map = HashMap::new();
    for &k in keys {
        *map.entry(k).or_insert(0) += 1;
    }
    map
}
