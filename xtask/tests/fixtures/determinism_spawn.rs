//! Fixture: raw thread spawn outside the deterministic pool. Never
//! compiled.

pub fn background() {
    std::thread::spawn(|| {});
}
