//! Fixture: wall-clock use inside a result-producing crate. Fed to the
//! lint engine as `crates/fdm/src/fixture.rs`; never compiled.

pub fn elapsed() -> std::time::Duration {
    let start = std::time::Instant::now();
    start.elapsed()
}
