//! Fixture: one specimen of each float-determinism lint. Never compiled.

pub fn exact_compare(residual: f64) -> bool {
    residual == 0.0
}

pub fn nan_capable_sort(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn lossy_narrowing(x: f64) -> (f32, usize) {
    (x as f32, x as usize)
}
