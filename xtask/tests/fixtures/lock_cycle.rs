//! Fixture: a classic two-lock deadlock — `forward` takes `a` then `b`,
//! `backward` takes `b` then `a`. Never compiled. Poison recovery keeps
//! the fixture free of panic-capable sites so only the lock-order pass
//! fires.

use std::sync::{Mutex, PoisonError};

pub struct Shared {
    a: Mutex<u64>,
    b: Mutex<u64>,
}

impl Shared {
    pub fn forward(&self) -> u64 {
        let ga = self.a.lock().unwrap_or_else(PoisonError::into_inner);
        let gb = self.b.lock().unwrap_or_else(PoisonError::into_inner);
        *ga + *gb
    }

    pub fn backward(&self) -> u64 {
        let gb = self.b.lock().unwrap_or_else(PoisonError::into_inner);
        let ga = self.a.lock().unwrap_or_else(PoisonError::into_inner);
        *gb - *ga
    }
}
