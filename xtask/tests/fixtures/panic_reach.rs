//! Fixture: a public entry point whose panic is buried one call deep,
//! next to a provably panic-free entry. Never compiled.

pub fn entry_point(v: Option<u32>) -> u32 {
    deep_helper(v)
}

fn deep_helper(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn safe_entry() -> u32 {
    7
}
