//! Fixture: panic-capable call sites in a ratcheted crate, including the
//! exempt forms the counter must skip. Never compiled.

pub fn count_me(v: Option<u32>) -> u32 {
    // Counted: bare unwrap, undocumented expect, panic!, assert!.
    let a = v.unwrap();
    let b = v.expect("present");
    assert!(a <= b);
    if a > 100 {
        panic!("too big");
    }
    // Exempt: documented invariant and debug-only assertion.
    let c = v.expect("invariant: caller checked is_some above");
    debug_assert!(c < 1000);
    a + b + c
}

#[cfg(test)]
mod tests {
    // Exempt: test code may panic freely.
    #[test]
    fn in_tests_unwrap_is_fine() {
        let v: Option<u32> = Some(1);
        v.unwrap();
        v.expect("fine");
        assert_eq!(v, Some(1));
    }
}
