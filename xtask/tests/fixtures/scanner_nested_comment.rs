//! Fixture: violating code straddling a nested block comment. Never
//! compiled. The comment below nests two deep, contains quote characters
//! and a decoy `*/` inside the doubled nesting level, plus text that looks
//! like violations — none of it may count.

/* outer level " unbalanced quote
   /* inner level: std::time::Instant::now() and x.unwrap() are text,
      and this decoy terminator "*/ only pops the inner level,
   panic!("decoy") */

pub fn after_the_comment() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}
