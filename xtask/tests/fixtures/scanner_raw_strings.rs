//! Fixture: panic-looking text sealed inside raw strings. Never compiled.
//! The hash-fenced literals below contain `unwrap()`, `panic!`, quote
//! and hash tricks, and a multi-line body; only the real call at the end
//! may be counted — and on the right line.

pub fn decoys() -> (&'static str, &'static str, &'static str) {
    let a = r"plain raw: x.unwrap() and panic!(no)";
    let b = r#"one hash: "quoted" then x.unwrap()"#;
    let c = r##"hash trick: "# not the end, panic!("still text") "##;
    (a, b, c)
}

pub fn multiline() -> &'static str {
    r#"line one
line two: x.unwrap() is text
line three"#
}

pub fn the_real_site(v: Option<u32>) -> u32 {
    v.unwrap()
}
