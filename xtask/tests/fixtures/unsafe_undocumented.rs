//! Fixture: unsafe blocks with and without a SAFETY justification. Never
//! compiled.

pub fn documented(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` points at a live byte.
    unsafe { *p }
}

pub fn undocumented(p: *const u8) -> u8 {
    unsafe { *p }
}
