//! End-to-end tests of the lint engine against the deliberately violating
//! snippets in `tests/fixtures/`. Each fixture is fed to [`lint_sources`]
//! under a workspace path that puts it in scope for the lint under test;
//! the fixtures themselves are never compiled (the workspace walk skips
//! `xtask/tests/fixtures/`).

use xtask::lint_sources;
use xtask::lints::lint;

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read fixture {path}: {e}"))
}

fn lints_fired(sources: &[(String, String)], allow: &str, baseline: &str) -> Vec<&'static str> {
    let outcome = lint_sources(sources, allow, baseline).expect("lint run");
    outcome.violations.iter().map(|d| d.lint).collect()
}

#[test]
fn determinism_time_fires_in_result_producing_crate() {
    let sources = vec![("crates/fdm/src/fixture.rs".to_string(), fixture("determinism_time.rs"))];
    let fired = lints_fired(&sources, "", "");
    assert_eq!(fired, vec![lint::DETERMINISM_TIME], "{fired:?}");
}

#[test]
fn determinism_time_is_exempt_in_telemetry_and_bench() {
    for crate_dir in ["telemetry", "bench"] {
        let path = format!("crates/{crate_dir}/src/fixture.rs");
        let sources = vec![(path, fixture("determinism_time.rs"))];
        let outcome = lint_sources(&sources, "", "").expect("lint run");
        assert!(outcome.is_clean(), "{crate_dir}: {:?}", outcome.violations);
    }
}

#[test]
fn determinism_spawn_fires_outside_the_pool_crate() {
    let sources = vec![("crates/nn/src/fixture.rs".to_string(), fixture("determinism_spawn.rs"))];
    let fired = lints_fired(&sources, "", "");
    assert_eq!(fired, vec![lint::DETERMINISM_SPAWN], "{fired:?}");

    let sources =
        vec![("crates/parallel/src/fixture.rs".to_string(), fixture("determinism_spawn.rs"))];
    let outcome = lint_sources(&sources, "", "").expect("lint run");
    assert!(outcome.is_clean(), "{:?}", outcome.violations);
}

#[test]
fn determinism_hash_fires_in_result_producing_crate() {
    let sources =
        vec![("crates/linalg/src/fixture.rs".to_string(), fixture("determinism_hash.rs"))];
    let fired = lints_fired(&sources, "", "");
    assert!(fired.iter().all(|&l| l == lint::DETERMINISM_HASH), "{fired:?}");
    assert!(!fired.is_empty());
}

#[test]
fn allowlist_suppresses_a_justified_exception() {
    let sources = vec![("crates/fdm/src/fixture.rs".to_string(), fixture("determinism_time.rs"))];
    let allow =
        "determinism-time crates/fdm/src/fixture.rs :: fixture timing never reaches results\n";
    let outcome = lint_sources(&sources, allow, "").expect("lint run");
    assert!(outcome.is_clean(), "{:?}", outcome.violations);
    assert_eq!(outcome.suppressed.len(), 1);
}

#[test]
fn stale_allowlist_entry_fails_the_run() {
    let sources =
        vec![("crates/fdm/src/clean.rs".to_string(), "pub fn f() -> u32 { 1 }\n".to_string())];
    let allow = "determinism-time crates/fdm/src/clean.rs :: no longer needed\n";
    let fired = lints_fired(&sources, allow, "");
    assert_eq!(fired, vec![lint::ALLOWLIST_STALE], "{fired:?}");
}

#[test]
fn panic_counter_counts_real_sites_and_skips_exempt_forms() {
    let sources = vec![("crates/linalg/src/fixture.rs".to_string(), fixture("panic_sites.rs"))];
    let outcome = lint_sources(&sources, "", "").expect("lint run");
    let sites = &outcome.panic_sites["crates/linalg/src/fixture.rs"];
    // unwrap + undocumented expect + assert! + panic! — the invariant
    // expect, debug_assert!, and everything inside #[cfg(test)] are exempt.
    assert_eq!(sites.len(), 4, "{sites:?}");
}

#[test]
fn matching_baseline_passes_and_regression_fails() {
    let sources = vec![("crates/linalg/src/fixture.rs".to_string(), fixture("panic_sites.rs"))];

    let at_baseline = "4 crates/linalg/src/fixture.rs\n";
    let outcome = lint_sources(&sources, "", at_baseline).expect("lint run");
    assert!(outcome.is_clean(), "{:?}", outcome.violations);

    // A tightened (regressed-relative-to-current) baseline must fail.
    let regressed = "3 crates/linalg/src/fixture.rs\n";
    let fired = lints_fired(&sources, "", regressed);
    assert_eq!(fired, vec![lint::PANIC_FREEDOM], "{fired:?}");

    // An improvement that is not locked in must fail as stale.
    let slack = "9 crates/linalg/src/fixture.rs\n";
    let fired = lints_fired(&sources, "", slack);
    assert_eq!(fired, vec![lint::BASELINE_STALE], "{fired:?}");
}

#[test]
fn unsafe_is_forbidden_outside_the_pool_crate() {
    let sources =
        vec![("crates/core/src/fixture.rs".to_string(), fixture("unsafe_undocumented.rs"))];
    let fired = lints_fired(&sources, "", "");
    assert!(fired.contains(&lint::UNSAFE_FORBIDDEN), "{fired:?}");
}

#[test]
fn undocumented_unsafe_in_the_pool_crate_fails_only_where_undocumented() {
    let sources =
        vec![("crates/parallel/src/fixture.rs".to_string(), fixture("unsafe_undocumented.rs"))];
    let outcome = lint_sources(&sources, "", "").expect("lint run");
    let fired: Vec<_> = outcome.violations.iter().map(|d| d.lint).collect();
    assert_eq!(fired, vec![lint::UNSAFE_UNDOCUMENTED], "{fired:?}");
    assert_eq!(outcome.unsafe_inventory.len(), 2);
    assert_eq!(
        outcome.unsafe_inventory.iter().filter(|s| s.documented).count(),
        1,
        "{:?}",
        outcome.unsafe_inventory
    );
}

#[test]
fn missing_unsafe_deny_attribute_fires_on_crate_roots() {
    let sources =
        vec![("crates/grf/src/lib.rs".to_string(), "pub fn f() -> u32 { 1 }\n".to_string())];
    let fired = lints_fired(&sources, "", "");
    assert_eq!(fired, vec![lint::UNSAFE_DENY], "{fired:?}");

    let sources = vec![(
        "crates/grf/src/lib.rs".to_string(),
        "#![deny(unsafe_code)]\npub fn f() -> u32 { 1 }\n".to_string(),
    )];
    let outcome = lint_sources(&sources, "", "").expect("lint run");
    assert!(outcome.is_clean(), "{:?}", outcome.violations);
}

#[test]
fn the_real_workspace_is_clean() {
    let root = xtask::workspace_root();
    let outcome = xtask::run_workspace_lint(&root).expect("workspace lint");
    assert!(
        outcome.is_clean(),
        "workspace lint found violations:\n{}",
        xtask::format_report(&outcome, false)
    );
    // The audited unsafe sites (two in deepoheat-parallel, three in the
    // linalg AVX2 microkernel module) stay documented.
    assert_eq!(outcome.unsafe_inventory.len(), 5);
    assert!(outcome.unsafe_inventory.iter().all(|s| s.documented));
}
