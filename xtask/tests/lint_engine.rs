//! End-to-end tests of the lint engine against the deliberately violating
//! snippets in `tests/fixtures/`. Each fixture is fed to [`lint_sources`]
//! under a workspace path that puts it in scope for the lint under test;
//! the fixtures themselves are never compiled (the workspace walk skips
//! `xtask/tests/fixtures/`).

use xtask::lint_sources;
use xtask::lints::lint;

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read fixture {path}: {e}"))
}

fn lints_fired(sources: &[(String, String)], allow: &str, baseline: &str) -> Vec<&'static str> {
    let outcome = lint_sources(sources, allow, baseline, "").expect("lint run");
    outcome.violations.iter().map(|d| d.lint).collect()
}

#[test]
fn determinism_time_fires_in_result_producing_crate() {
    let sources = vec![("crates/fdm/src/fixture.rs".to_string(), fixture("determinism_time.rs"))];
    let fired = lints_fired(&sources, "", "");
    assert_eq!(fired, vec![lint::DETERMINISM_TIME], "{fired:?}");
}

#[test]
fn determinism_time_is_exempt_in_telemetry_and_bench() {
    for crate_dir in ["telemetry", "bench"] {
        let path = format!("crates/{crate_dir}/src/fixture.rs");
        let sources = vec![(path, fixture("determinism_time.rs"))];
        let outcome = lint_sources(&sources, "", "", "").expect("lint run");
        assert!(outcome.is_clean(), "{crate_dir}: {:?}", outcome.violations);
    }
}

#[test]
fn determinism_spawn_fires_outside_the_pool_crate() {
    let sources = vec![("crates/nn/src/fixture.rs".to_string(), fixture("determinism_spawn.rs"))];
    let fired = lints_fired(&sources, "", "");
    assert_eq!(fired, vec![lint::DETERMINISM_SPAWN], "{fired:?}");

    let sources =
        vec![("crates/parallel/src/fixture.rs".to_string(), fixture("determinism_spawn.rs"))];
    let outcome = lint_sources(&sources, "", "", "").expect("lint run");
    assert!(outcome.is_clean(), "{:?}", outcome.violations);
}

#[test]
fn determinism_hash_fires_in_result_producing_crate() {
    let sources =
        vec![("crates/linalg/src/fixture.rs".to_string(), fixture("determinism_hash.rs"))];
    let fired = lints_fired(&sources, "", "");
    assert!(fired.iter().all(|&l| l == lint::DETERMINISM_HASH), "{fired:?}");
    assert!(!fired.is_empty());
}

#[test]
fn allowlist_suppresses_a_justified_exception() {
    let sources = vec![("crates/fdm/src/fixture.rs".to_string(), fixture("determinism_time.rs"))];
    let allow =
        "determinism-time crates/fdm/src/fixture.rs :: fixture timing never reaches results\n";
    let outcome = lint_sources(&sources, allow, "", "").expect("lint run");
    assert!(outcome.is_clean(), "{:?}", outcome.violations);
    assert_eq!(outcome.suppressed.len(), 1);
}

#[test]
fn stale_allowlist_entry_fails_the_run() {
    let sources =
        vec![("crates/fdm/src/clean.rs".to_string(), "pub fn f() -> u32 { 1 }\n".to_string())];
    let allow = "determinism-time crates/fdm/src/clean.rs :: no longer needed\n";
    let fired = lints_fired(&sources, allow, "");
    assert_eq!(fired, vec![lint::ALLOWLIST_STALE], "{fired:?}");
}

#[test]
fn panic_counter_counts_real_sites_and_skips_exempt_forms() {
    let sources = vec![("crates/linalg/src/fixture.rs".to_string(), fixture("panic_sites.rs"))];
    let outcome = lint_sources(&sources, "", "", "").expect("lint run");
    let sites = &outcome.panic_sites["crates/linalg/src/fixture.rs"];
    // unwrap + undocumented expect + assert! + panic! — the invariant
    // expect, debug_assert!, and everything inside #[cfg(test)] are exempt.
    assert_eq!(sites.len(), 4, "{sites:?}");
}

#[test]
fn matching_baseline_passes_and_regression_fails() {
    let sources = vec![("crates/linalg/src/fixture.rs".to_string(), fixture("panic_sites.rs"))];

    let at_baseline = "4 crates/linalg/src/fixture.rs\n";
    let outcome = lint_sources(&sources, "", at_baseline, "").expect("lint run");
    assert!(outcome.is_clean(), "{:?}", outcome.violations);

    // A tightened (regressed-relative-to-current) baseline must fail.
    let regressed = "3 crates/linalg/src/fixture.rs\n";
    let fired = lints_fired(&sources, "", regressed);
    assert_eq!(fired, vec![lint::PANIC_FREEDOM], "{fired:?}");

    // An improvement that is not locked in must fail as stale.
    let slack = "9 crates/linalg/src/fixture.rs\n";
    let fired = lints_fired(&sources, "", slack);
    assert_eq!(fired, vec![lint::BASELINE_STALE], "{fired:?}");
}

#[test]
fn unsafe_is_forbidden_outside_the_pool_crate() {
    let sources =
        vec![("crates/core/src/fixture.rs".to_string(), fixture("unsafe_undocumented.rs"))];
    let fired = lints_fired(&sources, "", "");
    assert!(fired.contains(&lint::UNSAFE_FORBIDDEN), "{fired:?}");
}

#[test]
fn undocumented_unsafe_in_the_pool_crate_fails_only_where_undocumented() {
    let sources =
        vec![("crates/parallel/src/fixture.rs".to_string(), fixture("unsafe_undocumented.rs"))];
    let outcome = lint_sources(&sources, "", "", "").expect("lint run");
    let fired: Vec<_> = outcome.violations.iter().map(|d| d.lint).collect();
    assert_eq!(fired, vec![lint::UNSAFE_UNDOCUMENTED], "{fired:?}");
    assert_eq!(outcome.unsafe_inventory.len(), 2);
    assert_eq!(
        outcome.unsafe_inventory.iter().filter(|s| s.documented).count(),
        1,
        "{:?}",
        outcome.unsafe_inventory
    );
}

#[test]
fn missing_unsafe_deny_attribute_fires_on_crate_roots() {
    let sources =
        vec![("crates/grf/src/lib.rs".to_string(), "pub fn f() -> u32 { 1 }\n".to_string())];
    let fired = lints_fired(&sources, "", "");
    assert_eq!(fired, vec![lint::UNSAFE_DENY], "{fired:?}");

    let sources = vec![(
        "crates/grf/src/lib.rs".to_string(),
        "#![deny(unsafe_code)]\npub fn f() -> u32 { 1 }\n".to_string(),
    )];
    let outcome = lint_sources(&sources, "", "", "").expect("lint run");
    assert!(outcome.is_clean(), "{:?}", outcome.violations);
}

#[test]
fn nested_block_comments_mask_decoys_but_not_following_code() {
    let sources =
        vec![("crates/fdm/src/fixture.rs".to_string(), fixture("scanner_nested_comment.rs"))];
    let outcome = lint_sources(&sources, "", "", "").expect("lint run");
    // Only the real `Instant::now()` after the comment, on its exact line;
    // the decoy `unwrap()`/`panic!` text inside the comment counts nothing.
    let fired: Vec<_> = outcome.violations.iter().map(|d| (d.lint, d.line)).collect();
    assert_eq!(fired, vec![(lint::DETERMINISM_TIME, 12)], "{fired:?}");
    assert!(outcome.panic_sites.values().all(Vec::is_empty), "{:?}", outcome.panic_sites);
}

#[test]
fn raw_string_decoys_do_not_count_and_lines_stay_aligned() {
    let sources =
        vec![("crates/linalg/src/fixture.rs".to_string(), fixture("scanner_raw_strings.rs"))];
    let baseline = "1 crates/linalg/src/fixture.rs\n";
    let outcome = lint_sources(&sources, "", baseline, "").expect("lint run");
    assert!(outcome.is_clean(), "{:?}", outcome.violations);
    // The one real site, attributed past the multi-line raw string on the
    // correct line — proving the mask preserved every newline.
    let sites = &outcome.panic_sites["crates/linalg/src/fixture.rs"];
    assert_eq!(sites.len(), 1, "{sites:?}");
    assert_eq!(sites[0].line, 20, "{sites:?}");
}

#[test]
fn seeded_deadlock_cycle_is_caught() {
    let sources = vec![("crates/serve/src/fixture.rs".to_string(), fixture("lock_cycle.rs"))];
    let fired = lints_fired(&sources, "", "");
    assert_eq!(fired, vec![lint::LOCK_ORDER], "{fired:?}");

    let outcome = lint_sources(&sources, "", "", "").expect("lint run");
    assert_eq!(
        outcome.locks.cycles,
        vec![vec!["serve::Shared.a".to_string(), "serve::Shared.b".to_string()]]
    );

    // An argued allowlist entry suppresses it.
    let allow = "lock-order crates/serve/src/fixture.rs :: fixture cycle under test\n";
    let outcome = lint_sources(&sources, allow, "", "").expect("lint run");
    assert!(outcome.is_clean(), "{:?}", outcome.violations);
    assert_eq!(outcome.suppressed.len(), 1);
}

#[test]
fn float_family_fires_once_per_specimen() {
    let sources = vec![("crates/linalg/src/fixture.rs".to_string(), fixture("float_family.rs"))];
    let baseline = "1 crates/linalg/src/fixture.rs\n"; // the sort_by unwrap
    let outcome = lint_sources(&sources, "", baseline, "").expect("lint run");
    let mut fired: Vec<_> = outcome.violations.iter().map(|d| d.lint).collect();
    fired.sort_unstable();
    assert_eq!(
        fired,
        vec![
            lint::FLOAT_AS_LOSSY, // x as f32
            lint::FLOAT_AS_LOSSY, // x as usize
            lint::FLOAT_CMP_UNWRAP,
            lint::FLOAT_EQ,
        ],
        "{:?}",
        outcome.violations
    );
}

#[test]
fn stale_entries_for_the_new_families_fail_the_run() {
    let sources =
        vec![("crates/serve/src/clean.rs".to_string(), "pub fn ok() -> u32 { 1 }\n".to_string())];
    let allow = "float-eq crates/serve/src/clean.rs :: gone\n\
                 lock-order crates/serve/src/clean.rs :: gone\n";
    let fired = lints_fired(&sources, allow, "");
    assert_eq!(fired, vec![lint::ALLOWLIST_STALE, lint::ALLOWLIST_STALE], "{fired:?}");
}

#[test]
fn panic_reach_ratchets_public_entry_points() {
    let sources = vec![("crates/serve/src/fixture.rs".to_string(), fixture("panic_reach.rs"))];
    let baseline = "1 crates/serve/src/fixture.rs\n"; // deep_helper's unwrap

    // A reaching entry not in the reach baseline fails, naming the entry.
    let outcome = lint_sources(&sources, "", baseline, "").expect("lint run");
    let fired: Vec<_> = outcome.violations.iter().map(|d| d.lint).collect();
    assert_eq!(fired, vec![lint::PANIC_REACH], "{:?}", outcome.violations);
    assert!(
        outcome.violations[0].message.contains("serve::fixture::entry_point"),
        "{}",
        outcome.violations[0].message
    );

    // Recorded in the baseline: clean — `safe_entry` never needed one.
    let reach = "serve::fixture::entry_point\n";
    let outcome = lint_sources(&sources, "", baseline, reach).expect("lint run");
    assert!(outcome.is_clean(), "{:?}", outcome.violations);

    // A baselined entry that stopped reaching must be re-ratcheted.
    let reach = "serve::fixture::entry_point\nserve::fixture::safe_entry\n";
    let fired = lints_fired_with_reach(&sources, baseline, reach);
    assert_eq!(fired, vec![lint::REACH_BASELINE_STALE], "{fired:?}");
}

fn lints_fired_with_reach(
    sources: &[(String, String)],
    baseline: &str,
    reach: &str,
) -> Vec<&'static str> {
    let outcome = lint_sources(sources, "", baseline, reach).expect("lint run");
    outcome.violations.iter().map(|d| d.lint).collect()
}

#[test]
fn the_real_workspace_is_clean() {
    let root = xtask::workspace_root();
    let outcome = xtask::run_workspace_lint(&root).expect("workspace lint");
    assert!(
        outcome.is_clean(),
        "workspace lint found violations:\n{}",
        xtask::format_report(&outcome, false)
    );
    // The audited unsafe sites (two in deepoheat-parallel, three in the
    // linalg AVX2 microkernel module) stay documented.
    assert_eq!(outcome.unsafe_inventory.len(), 5);
    assert!(outcome.unsafe_inventory.iter().all(|s| s.documented));
}
